(** Minimum-cost synthesis under an arbitrary {!Cost_model}.

    The paper's FMCF/MCE are breadth-first searches, correct only when
    every gate costs the same.  This module generalizes them to integer
    gate costs with a uniform-cost (Dijkstra) search over the same state
    space — the paper's "easily modified to take into account the precise
    NMR costs" claim, made concrete.  With the unit model the results
    coincide with {!Mce} and {!Fmcf} (a property the test suite checks). *)

type result = {
  target : Reversible.Revfun.t;
  not_mask : int; (** free input NOT layer, as in {!Mce} *)
  cascade : Cascade.t;
  cost : int; (** total model cost of the cascade *)
}

(** [express ?max_cost library ~model target] finds a cascade of minimal
    total cost implementing [target] (with a free input NOT layer), or
    [None] if none exists within [max_cost] (default 7, like the paper's cb; raise with care — the state space grows geometrically in the cost bound). *)
val express :
  ?max_cost:int ->
  Library.t ->
  model:Cost_model.t ->
  Reversible.Revfun.t ->
  result option

(** [census ?max_cost library ~model] is the weighted analogue of the
    paper's Table 2: [(c, n)] pairs counting the reversible functions
    whose minimal model cost is exactly [c] (NOT-free, zero-fixing
    functions, as in Theorem 1). *)
val census :
  ?max_cost:int -> Library.t -> model:Cost_model.t -> (int * int) list
