open Reversible
open Permgroup

let not_layers ~bits = Revfun.not_layer_group ~bits

let cnots ~bits =
  List.concat_map
    (fun control ->
      List.filter_map
        (fun target ->
          if target <> control then Some (Gates.cnot ~bits ~control ~target) else None)
        (List.init bits Fun.id))
    (List.init bits Fun.id)

let closure_of fns = Closure.generate (List.map Revfun.to_perm fns)

let schreier_of ~bits fns =
  Schreier.of_generators ~degree:(1 lsl bits) (List.map Revfun.to_perm fns)

let group_order ~bits fns = Schreier.order (schreier_of ~bits fns)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let is_universal g =
  let bits = Revfun.bits g in
  let gens = (g :: not_layers ~bits) @ cnots ~bits in
  group_order ~bits gens = factorial (1 lsl bits)

let linear_functions ~bits = closure_of (cnots ~bits)

let split_g4 census =
  let linear = linear_functions ~bits:3 in
  List.partition
    (fun (m : Fmcf.member) -> Closure.mem linear (Revfun.to_perm m.Fmcf.func))
    (Fmcf.members_at census ~cost:4)

let relabel_wires f sigma = Revfun.relabel f sigma

let all_wire_permutations bits =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) l)))
          l
  in
  List.map Array.of_list (perms (List.init bits Fun.id))

let wire_orbits fns =
  match fns with
  | [] -> []
  | first :: _ ->
      let bits = Revfun.bits first in
      let sigmas = all_wire_permutations bits in
      let canonical f =
        List.fold_left
          (fun best sigma ->
            let candidate = relabel_wires f sigma in
            if Revfun.compare candidate best < 0 then candidate else best)
          f sigmas
      in
      let groups = Hashtbl.create 16 in
      List.iter
        (fun f ->
          let key = Perm.key (Revfun.to_perm (canonical f)) in
          let existing = try Hashtbl.find groups key with Not_found -> [] in
          Hashtbl.replace groups key (f :: existing))
        fns;
      Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []
      |> List.sort (fun a b ->
             Revfun.compare (List.hd a) (List.hd b))

let theorem2_check ~bits =
  if bits < 2 || bits > 3 then invalid_arg "Universality.theorem2_check: bits in {2,3}";
  let generators =
    if bits = 3 then Gates.g1 :: cnots ~bits else cnots ~bits
  in
  let subgroup = closure_of generators in
  let subgroup_size = Closure.size subgroup in
  if not (Closure.fold (fun p acc -> acc && Perm.apply p 0 = 0) subgroup true) then
    failwith "Universality.theorem2_check: subgroup does not fix zero";
  let reps = List.map Revfun.to_perm (not_layers ~bits) in
  let mem p = Closure.mem subgroup p in
  if not (Coset.disjoint ~reps ~mem) then
    failwith "Universality.theorem2_check: cosets intersect";
  let full_order = group_order ~bits (generators @ not_layers ~bits) in
  if not (Coset.covers ~reps ~subgroup_size ~group_size:full_order) then
    failwith "Universality.theorem2_check: cosets do not cover";
  (subgroup_size, full_order)
