(** Peephole rewriting of gate cascades.

    Sound local simplifications over the {e unitary} semantics:
    - cancellation: V·V{^ +}, V{^ +}·V and F·F on the same wires vanish;
    - merging: V·V and V{^ +}·V{^ +} on the same wires become the Feynman
      gate (V² = NOT as a matrix identity);
    - commutation: adjacent independent gates are reordered into a
      canonical order so that cancellations separated by unrelated gates
      are still found.

    Note on semantics: rewriting preserves the exact unitary (and hence
    the computed reversible function), but may change the 38-point
    multiple-valued permutation, because the V·V → F merge alters the
    don't-care rows (F is defined as the identity on mixed targets while
    V·V maps V0 ↔ V1).  The test suite pins both facts. *)

(** [commute g1 g2] is true when the two gates' unitaries commute for a
    {e structural} reason recognized by the rewriter: disjoint wire sets,
    a shared control with distinct targets, shared target with both gates
    diagonal in the same basis (both controlled-V/V{^ +}), two Feynman
    gates sharing only their target, or identical wires with compatible
    kinds. *)
val commute : Gate.t -> Gate.t -> bool

(** [cancel_once cascade] removes the first adjacent inverse pair or
    merges the first adjacent V·V pair; [None] when no rule fires. *)
val cancel_once : Cascade.t -> Cascade.t option

(** [normalize ?max_rounds cascade] repeatedly applies cancellation,
    merging and canonical reordering of commuting neighbours until a
    fixpoint (or [max_rounds], default 64). The result never has more
    gates than the input and implements the same unitary. *)
val normalize : ?max_rounds:int -> Cascade.t -> Cascade.t

(** [equivalent_unitary ~qubits a b] compares two cascades as exact
    unitaries. *)
val equivalent_unitary : qubits:int -> Cascade.t -> Cascade.t -> bool
