(** ASCII rendering of gate cascades, in the style of the paper's
    figures: one row per wire, one column per gate, controls drawn as
    [*], Feynman targets as [(+)], V / V{^ +} targets as boxed labels.

    Example — the Peres circuit of Figure 4 ([VCB*FBA*VCA*V+CB]):
    {v
A: --------*-----*---------
B: --*----(+)----|-----*---
C: -[V]---------[V]---[V+]-
    v} *)

(** [to_ascii ~qubits ?not_mask ?labels cascade] renders the circuit.
    [not_mask] draws the free input NOT layer as [N] boxes in a first
    column (a code mask as in {!Mce.result}: wire 0 = most significant
    bit); [labels] overrides wire names (defaults A, B, C, ...). *)
val to_ascii : qubits:int -> ?not_mask:int -> ?labels:string list -> Cascade.t -> string

(** [pp ~qubits ppf cascade] prints {!to_ascii} output. *)
val pp : qubits:int -> Format.formatter -> Cascade.t -> unit
