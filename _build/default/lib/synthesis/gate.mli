(** The paper's elementary 2-qubit quantum gates on an n-qubit circuit.

    Three kinds: controlled-V, controlled-V{^ +} and Feynman (CNOT).
    Following the paper's subscript convention, the {e first} wire of the
    name is the data/target wire and the {e second} is the control:
    V_BA has data B and control A; F_CA XORs A into C.

    NOT gates are deliberately absent: the paper treats them as a free
    input-side layer (Theorem 2), handled by {!Mce}. *)

type kind = Controlled_v | Controlled_v_dag | Feynman

type t = private { kind : kind; target : int; control : int }

(** [make kind ~target ~control] builds a gate.
    @raise Invalid_argument if [target = control] or a wire is negative. *)
val make : kind -> target:int -> control:int -> t

(** [all ~qubits] is the paper's library L for an n-qubit circuit:
    [3 * n * (n-1)] gates (18 when n = 3), ordered V, V{^ +}, F. *)
val all : qubits:int -> t list

val kind : t -> kind
val target : t -> int
val control : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

(** [adjoint g] is the Hermitian adjoint: V and V{^ +} swap, Feynman is
    self-adjoint. *)
val adjoint : t -> t

(** [purity_wires g] lists the wires that must carry pure binary values
    for the gate to be legally cascaded: the control for controlled gates,
    both wires for Feynman (paper, Section 2). *)
val purity_wires : t -> int list

(** [purity_mask g] is {!purity_wires} as a bitmask (bit [w] = wire [w]). *)
val purity_mask : t -> int

(** [apply g p] is the multiple-valued semantics on a pattern:
    - controlled-V (V{^ +}): when the control is [One], the data value
      advances along the V (V{^ +}) cycle; when the control is [Zero] or
      mixed, nothing changes (the mixed case is the paper's don't-care,
      fixed as the identity to keep gates permutations);
    - Feynman: when the control is [One] and the target binary, the target
      flips; any other case (including mixed values, again don't-care) is
      the identity. *)
val apply : t -> Mvl.Pattern.t -> Mvl.Pattern.t

(** [matrix ~qubits g] is the exact unitary of the gate. *)
val matrix : qubits:int -> t -> Qmath.Dmatrix.t

(** [name g] renders the paper's subscript naming with wires A..Z:
    ["VBA"], ["V+AB"], ["FCA"]. *)
val name : t -> string

(** [of_name ~qubits s] parses {!name} output (case-insensitive).
    @raise Invalid_argument on malformed names or out-of-range wires. *)
val of_name : qubits:int -> string -> t

val pp : Format.formatter -> t -> unit
