type kind = Controlled_v | Controlled_v_dag | Feynman
type t = { kind : kind; target : int; control : int }

let make kind ~target ~control =
  if target < 0 || control < 0 then invalid_arg "Gate.make: negative wire";
  if target = control then invalid_arg "Gate.make: target equals control";
  { kind; target; control }

let all ~qubits =
  let pairs =
    List.concat_map
      (fun target ->
        List.filter_map
          (fun control -> if control <> target then Some (target, control) else None)
          (List.init qubits Fun.id))
      (List.init qubits Fun.id)
  in
  List.concat_map
    (fun kind -> List.map (fun (target, control) -> { kind; target; control }) pairs)
    [ Controlled_v; Controlled_v_dag; Feynman ]

let kind g = g.kind
let target g = g.target
let control g = g.control
let equal a b = a = b
let compare = Stdlib.compare

let adjoint g =
  match g.kind with
  | Controlled_v -> { g with kind = Controlled_v_dag }
  | Controlled_v_dag -> { g with kind = Controlled_v }
  | Feynman -> g

let purity_wires g =
  match g.kind with
  | Controlled_v | Controlled_v_dag -> [ g.control ]
  | Feynman -> [ min g.control g.target; max g.control g.target ]

let purity_mask g = List.fold_left (fun m w -> m lor (1 lsl w)) 0 (purity_wires g)

let apply g p =
  let open Mvl in
  match g.kind with
  | Controlled_v ->
      if Pattern.get p g.control = Quat.One then
        Pattern.set p g.target (Quat.v (Pattern.get p g.target))
      else p
  | Controlled_v_dag ->
      if Pattern.get p g.control = Quat.One then
        Pattern.set p g.target (Quat.v_dag (Pattern.get p g.target))
      else p
  | Feynman ->
      if Pattern.get p g.control = Quat.One && Quat.is_binary (Pattern.get p g.target)
      then Pattern.set p g.target (Quat.not_ (Pattern.get p g.target))
      else p

let matrix ~qubits g =
  let open Qmath in
  match g.kind with
  | Controlled_v -> Gate_matrix.controlled_v ~qubits ~control:g.control ~target:g.target
  | Controlled_v_dag ->
      Gate_matrix.controlled_v_dag ~qubits ~control:g.control ~target:g.target
  | Feynman -> Gate_matrix.feynman ~qubits ~control:g.control ~target:g.target

let wire_letter w =
  if w < 0 || w > 25 then invalid_arg "Gate.wire_letter: wire out of range";
  String.make 1 (Char.chr (Char.code 'A' + w))

let name g =
  let prefix =
    match g.kind with Controlled_v -> "V" | Controlled_v_dag -> "V+" | Feynman -> "F"
  in
  prefix ^ wire_letter g.target ^ wire_letter g.control

let of_name ~qubits s =
  let fail () = invalid_arg ("Gate.of_name: cannot parse " ^ s) in
  let s = String.uppercase_ascii (String.trim s) in
  let kind, rest =
    if String.length s >= 2 && s.[0] = 'V' && s.[1] = '+' then
      (Controlled_v_dag, String.sub s 2 (String.length s - 2))
    else if String.length s >= 1 && s.[0] = 'V' then
      (Controlled_v, String.sub s 1 (String.length s - 1))
    else if String.length s >= 1 && s.[0] = 'F' then
      (Feynman, String.sub s 1 (String.length s - 1))
    else fail ()
  in
  if String.length rest <> 2 then fail ();
  let wire c =
    let w = Char.code c - Char.code 'A' in
    if w < 0 || w >= qubits then fail ();
    w
  in
  make kind ~target:(wire rest.[0]) ~control:(wire rest.[1])

let pp ppf g = Format.pp_print_string ppf (name g)
