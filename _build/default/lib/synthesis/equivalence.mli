(** Symmetry analysis of cascade sets.

    The paper observes structure among the minimal implementations it
    finds: Figure 9's Toffoli circuits come in Hermitian-adjoint pairs
    obtained "by simply exchanging V and V{^ +} gates", and differ in
    "the qubit where they perform XOR operations"; the 24 universal
    circuits split into wire-relabeling families.  This module makes
    those statements checkable for any set of cascades. *)

(** [relabel_cascade cascade sigma] renames wire [w] to [sigma.(w)] in
    every gate.
    @raise Invalid_argument if [sigma] is not a wire permutation. *)
val relabel_cascade : Cascade.t -> int array -> Cascade.t

(** [same_function library a b] — equal binary restrictions (both must
    restrict). *)
val same_function : Library.t -> Cascade.t -> Cascade.t -> bool

(** [same_circuit library a b] — equal full-domain permutations (the
    granularity at which the paper counts "implementations"). *)
val same_circuit : Library.t -> Cascade.t -> Cascade.t -> bool

(** [group_by_circuit library cascades] partitions cascades by their
    full-domain permutation; Figure 9's 40 minimal Toffoli cascades fall
    into 4 groups of 10. *)
val group_by_circuit : Library.t -> Cascade.t list -> Cascade.t list list

(** [vdag_closed library cascades] checks the set is closed under the
    V ↔ V{^ +} exchange, and returns the number of cascades paired with a
    {e distinct} partner (the rest are self-paired).
    @raise Invalid_argument when the set is not closed (the paper's
    minimal sets always are: the exchange preserves minimality). *)
val vdag_closed : Library.t -> Cascade.t list -> int

(** [xor_wires cascade] is the set of wires targeted by Feynman gates —
    the "qubit where they perform XOR" axis of Figure 9's discussion. *)
val xor_wires : Cascade.t -> int list

(** [relabel_orbits ~qubits cascades] partitions a set of cascades into
    orbits under wire relabeling of the cascade text (not the function):
    two cascades are equivalent when some renaming maps one gate list to
    the other. *)
val relabel_orbits : qubits:int -> Cascade.t list -> Cascade.t list list
