lib/qmath/dyadic.mli: Format
