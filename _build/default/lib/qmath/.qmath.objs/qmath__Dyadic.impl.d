lib/qmath/dyadic.ml: Format Int
