lib/qmath/gate_matrix.mli: Dmatrix
