lib/qmath/dmatrix.ml: Array Dyadic Format List
