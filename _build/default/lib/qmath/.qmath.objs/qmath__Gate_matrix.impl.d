lib/qmath/gate_matrix.ml: Dmatrix Dyadic
