lib/qmath/cfloat.mli: Dyadic Format
