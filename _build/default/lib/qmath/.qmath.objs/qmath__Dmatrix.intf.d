lib/qmath/dmatrix.mli: Dyadic Format
