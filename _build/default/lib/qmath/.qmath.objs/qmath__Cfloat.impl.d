lib/qmath/cfloat.ml: Dyadic Float Format
