let d = Dyadic.make

let not_gate =
  Dmatrix.of_rows
    [ [ Dyadic.zero; Dyadic.one ]; [ Dyadic.one; Dyadic.zero ] ]

(* V = [[ (1+i)/2, (1-i)/2 ], [ (1-i)/2, (1+i)/2 ]] — the paper writes the
   entries as 0.5+0.5i and 0.5-0.5i. *)
let v =
  Dmatrix.of_rows
    [ [ d ~re:1 ~im:1 ~exp:1; d ~re:1 ~im:(-1) ~exp:1 ];
      [ d ~re:1 ~im:(-1) ~exp:1; d ~re:1 ~im:1 ~exp:1 ] ]

let v_dag = Dmatrix.adjoint v

let check_wire qubits wire name =
  if wire < 0 || wire >= qubits then invalid_arg (name ^ ": wire out of range")

(* Bit of wire [w] inside index [j]; wire 0 is the most significant bit. *)
let bit_of ~qubits ~wire j = (j lsr (qubits - 1 - wire)) land 1
let with_bit ~qubits ~wire j b =
  let mask = 1 lsl (qubits - 1 - wire) in
  if b = 1 then j lor mask else j land lnot mask

let single ~qubits ~wire u =
  check_wire qubits wire "Gate_matrix.single";
  if Dmatrix.rows u <> 2 || Dmatrix.cols u <> 2 then
    invalid_arg "Gate_matrix.single: operator must be 2x2";
  let dim = 1 lsl qubits in
  Dmatrix.make dim dim (fun r c ->
      if with_bit ~qubits ~wire r 0 <> with_bit ~qubits ~wire c 0 then Dyadic.zero
      else Dmatrix.get u (bit_of ~qubits ~wire r) (bit_of ~qubits ~wire c))

let controlled ~qubits ~control ~target u =
  check_wire qubits control "Gate_matrix.controlled";
  check_wire qubits target "Gate_matrix.controlled";
  if control = target then invalid_arg "Gate_matrix.controlled: control = target";
  if Dmatrix.rows u <> 2 || Dmatrix.cols u <> 2 then
    invalid_arg "Gate_matrix.controlled: operator must be 2x2";
  let dim = 1 lsl qubits in
  Dmatrix.make dim dim (fun r c ->
      if bit_of ~qubits ~wire:control c = 0 then
        if r = c then Dyadic.one else Dyadic.zero
      else if
        bit_of ~qubits ~wire:control r = 1
        && with_bit ~qubits ~wire:target r 0 = with_bit ~qubits ~wire:target c 0
      then Dmatrix.get u (bit_of ~qubits ~wire:target r) (bit_of ~qubits ~wire:target c)
      else Dyadic.zero)

let controlled_v ~qubits ~control ~target = controlled ~qubits ~control ~target v
let controlled_v_dag ~qubits ~control ~target = controlled ~qubits ~control ~target v_dag
let feynman ~qubits ~control ~target = controlled ~qubits ~control ~target not_gate
let not_on ~qubits ~wire = single ~qubits ~wire not_gate
