type t = { re : float; im : float }

let zero = { re = 0.0; im = 0.0 }
let one = { re = 1.0; im = 0.0 }
let i = { re = 0.0; im = 1.0 }
let make re im = { re; im }
let of_float re = { re; im = 0.0 }
let add a b = { re = a.re +. b.re; im = a.im +. b.im }
let sub a b = { re = a.re -. b.re; im = a.im -. b.im }
let neg a = { re = -.a.re; im = -.a.im }

let mul a b =
  { re = (a.re *. b.re) -. (a.im *. b.im); im = (a.re *. b.im) +. (a.im *. b.re) }

let conj a = { a with im = -.a.im }
let scale k a = { re = k *. a.re; im = k *. a.im }
let norm_sq a = (a.re *. a.re) +. (a.im *. a.im)

let approx_equal ?(tol = 1e-9) a b =
  Float.abs (a.re -. b.re) <= tol && Float.abs (a.im -. b.im) <= tol

let of_dyadic d =
  let re, im = Dyadic.to_floats d in
  { re; im }

let pp ppf a = Format.fprintf ppf "%g%+gi" a.re a.im
