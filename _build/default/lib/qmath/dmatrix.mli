(** Dense matrices over the exact {!Dyadic} ring.

    Everything needed to treat quantum gates as unitary matrices, exactly:
    products, Kronecker products, Hermitian adjoints, unitarity checks and
    application to state vectors.  Dimensions in this repository are tiny
    (2{^ n} for n <= 4 qubits), so the representation is a plain [array array]
    and the algorithms are the textbook O(n^3) ones. *)

type t

(** {1 Construction} *)

(** [make rows cols f] builds the [rows * cols] matrix with entry
    [f row col]. *)
val make : int -> int -> (int -> int -> Dyadic.t) -> t

(** [of_rows entries] builds a matrix from a row-major list of lists.
    @raise Invalid_argument on ragged input or an empty matrix. *)
val of_rows : Dyadic.t list list -> t

val identity : int -> t

(** [permutation_matrix p] is the matrix of the basis permutation
    [col j -> row p.(j)]: entry [(p.(j), j)] is one.
    @raise Invalid_argument if [p] is not a permutation of [0..len-1]. *)
val permutation_matrix : int array -> t

val zero : int -> int -> t

(** {1 Accessors} *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Dyadic.t

(** {1 Algebra} *)

val add : t -> t -> t
val sub : t -> t -> t

(** [mul a b] is the matrix product [a * b].
    @raise Invalid_argument on dimension mismatch. *)
val mul : t -> t -> t

val scale : Dyadic.t -> t -> t

(** [kron a b] is the Kronecker (tensor) product; the row index of [a]
    is the high-order part. *)
val kron : t -> t -> t

(** [adjoint m] is the conjugate transpose (Hermitian adjoint). *)
val adjoint : t -> t

(** [apply m v] is the matrix-vector product.
    @raise Invalid_argument on dimension mismatch. *)
val apply : t -> Dyadic.t array -> Dyadic.t array

(** {1 Queries} *)

val equal : t -> t -> bool
val is_identity : t -> bool

(** [is_unitary m] checks [m * adjoint m = identity] exactly. *)
val is_unitary : t -> bool

(** [is_permutation m] is [Some p] when [m] is exactly a permutation
    matrix, with [p.(j)] the row of the unit entry in column [j]. *)
val is_permutation : t -> int array option

(** [rank m] is the rank over the complex rationals, computed exactly by
    fraction-free Gaussian elimination (cross-multiplication — entries
    stay in the dyadic ring; fine for the small matrices of this
    repository). *)
val rank : t -> int

val pp : Format.formatter -> t -> unit
