(** Exact unitary matrices for the paper's elementary quantum gates.

    Conventions: an [n]-qubit system has dimension [2^n]; basis state index
    [j] encodes the classical pattern with {e qubit 0 as the most significant
    bit} (so for 3 qubits, wire A = qubit 0, B = 1, C = 2, and the index of
    pattern A=1,B=0,C=0 is 4).  This matches the pattern codes used across
    the repository. *)

(** {1 One-qubit primitives (2 x 2)} *)

(** Pauli X, i.e. the NOT gate. *)
val not_gate : Dmatrix.t

(** The square root of NOT: V = ((1+i)/2) * [[1, -i], [-i, 1]], exactly the
    matrix printed in the paper's Section 2. *)
val v : Dmatrix.t

(** V{^ +}, the Hermitian adjoint of {!v}; [v * v_dag] is the identity and
    [v * v] is {!not_gate}. *)
val v_dag : Dmatrix.t

(** {1 Lifting to n qubits} *)

(** [single ~qubits ~wire u] applies the 2x2 matrix [u] on wire [wire] of a
    [qubits]-qubit system (identity elsewhere).
    @raise Invalid_argument if [wire] is out of range or [u] is not 2x2. *)
val single : qubits:int -> wire:int -> Dmatrix.t -> Dmatrix.t

(** [controlled ~qubits ~control ~target u] applies [u] on wire [target]
    when wire [control] carries 1.
    @raise Invalid_argument if wires coincide or are out of range. *)
val controlled : qubits:int -> control:int -> target:int -> Dmatrix.t -> Dmatrix.t

(** {1 The paper's 2-qubit library on n wires} *)

(** [controlled_v ~qubits ~control ~target] is the controlled-V gate. *)
val controlled_v : qubits:int -> control:int -> target:int -> Dmatrix.t

(** [controlled_v_dag ~qubits ~control ~target] is the controlled-V{^ +}. *)
val controlled_v_dag : qubits:int -> control:int -> target:int -> Dmatrix.t

(** [feynman ~qubits ~control ~target] is the Feynman (CNOT) gate:
    [target := target XOR control]. *)
val feynman : qubits:int -> control:int -> target:int -> Dmatrix.t

(** [not_on ~qubits ~wire] inverts one wire. *)
val not_on : qubits:int -> wire:int -> Dmatrix.t
