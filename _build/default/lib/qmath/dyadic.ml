type t = { re : int; im : int; exp : int }

(* Normalization invariant: exp = 0, or re or im is odd.  All constructors
   go through [norm], so structural equality is semantic equality. *)

let rec norm re im exp =
  if exp = 0 then { re; im; exp }
  else if re land 1 = 0 && im land 1 = 0 then norm (re asr 1) (im asr 1) (exp - 1)
  else { re; im; exp }

(* Amplitudes in this repository stay far below this bound; exceeding it
   signals a misuse (e.g. multiplying unnormalized huge scalars). *)
let max_component = 1 lsl 60

let check_range re im =
  if abs re >= max_component || abs im >= max_component then
    invalid_arg "Dyadic: component magnitude exceeds 2^60"

let make ~re ~im ~exp =
  if exp < 0 then invalid_arg "Dyadic.make: negative exponent";
  check_range re im;
  norm re im exp

let zero = { re = 0; im = 0; exp = 0 }
let one = { re = 1; im = 0; exp = 0 }
let minus_one = { re = -1; im = 0; exp = 0 }
let i = { re = 0; im = 1; exp = 0 }
let half_one_plus_i = { re = 1; im = 1; exp = 1 }
let half_one_minus_i = { re = 1; im = -1; exp = 1 }
let of_int n = { re = n; im = 0; exp = 0 }
let re_num t = t.re
let im_num t = t.im
let exp t = t.exp

let add a b =
  (* Align denominators to the larger exponent. *)
  let e = max a.exp b.exp in
  let sa = e - a.exp and sb = e - b.exp in
  let re = (a.re lsl sa) + (b.re lsl sb) and im = (a.im lsl sa) + (b.im lsl sb) in
  check_range re im;
  norm re im e

let neg a = { a with re = -a.re; im = -a.im }
let sub a b = add a (neg b)

let mul a b =
  let re = (a.re * b.re) - (a.im * b.im) and im = (a.re * b.im) + (a.im * b.re) in
  check_range re im;
  norm re im (a.exp + b.exp)

let conj a = { a with im = -a.im }

let mul_int a k =
  let re = a.re * k and im = a.im * k in
  check_range re im;
  norm re im a.exp

let div2 a = norm a.re a.im (a.exp + 1)
let equal a b = a.re = b.re && a.im = b.im && a.exp = b.exp

let compare a b =
  match Int.compare a.exp b.exp with
  | 0 -> ( match Int.compare a.re b.re with 0 -> Int.compare a.im b.im | c -> c)
  | c -> c

let is_zero a = a.re = 0 && a.im = 0
let is_real a = a.im = 0

let norm_sq a =
  let num = (a.re * a.re) + (a.im * a.im) in
  let e = 2 * a.exp in
  (* Reduce to lowest terms. *)
  let rec reduce num e = if e > 0 && num land 1 = 0 then reduce (num asr 1) (e - 1) else (num, e) in
  if num = 0 then (0, 0) else reduce num e

let to_floats a =
  let d = ldexp 1.0 (-a.exp) in
  (float_of_int a.re *. d, float_of_int a.im *. d)

let pp ppf a =
  if is_zero a then Format.pp_print_string ppf "0"
  else if a.exp = 0 then
    if a.im = 0 then Format.fprintf ppf "%d" a.re
    else if a.re = 0 then Format.fprintf ppf "%di" a.im
    else Format.fprintf ppf "(%d%+di)" a.re a.im
  else if a.im = 0 then Format.fprintf ppf "%d/2^%d" a.re a.exp
  else if a.re = 0 then Format.fprintf ppf "%di/2^%d" a.im a.exp
  else Format.fprintf ppf "(%d%+di)/2^%d" a.re a.im a.exp

let to_string a = Format.asprintf "%a" pp a
