(** Floating-point complex numbers.

    The exact {!Dyadic} ring covers everything the synthesis pipeline needs;
    this module exists for the probabilistic-automata numerics (stationary
    distributions, entropies) and for cross-checking the exact arithmetic. *)

type t = { re : float; im : float }

val zero : t
val one : t
val i : t
val make : float -> float -> t
val of_float : float -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val conj : t -> t
val scale : float -> t -> t

(** [norm_sq t] is [re^2 + im^2]. *)
val norm_sq : t -> float

(** [approx_equal ?tol a b] compares componentwise with absolute tolerance
    [tol] (default [1e-9]). *)
val approx_equal : ?tol:float -> t -> t -> bool

(** [of_dyadic d] converts an exact value to floating point. *)
val of_dyadic : Dyadic.t -> t

val pp : Format.formatter -> t -> unit
