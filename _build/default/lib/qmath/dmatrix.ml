type t = Dyadic.t array array

let make rows cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Dmatrix.make: empty matrix";
  Array.init rows (fun r -> Array.init cols (fun c -> f r c))

let of_rows entries =
  match entries with
  | [] -> invalid_arg "Dmatrix.of_rows: empty matrix"
  | first :: _ ->
      let cols = List.length first in
      if cols = 0 || List.exists (fun row -> List.length row <> cols) entries then
        invalid_arg "Dmatrix.of_rows: ragged or empty rows";
      Array.of_list (List.map Array.of_list entries)

let identity n = make n n (fun r c -> if r = c then Dyadic.one else Dyadic.zero)

let permutation_matrix p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then
        invalid_arg "Dmatrix.permutation_matrix: not a permutation";
      seen.(x) <- true)
    p;
  make n n (fun r c -> if p.(c) = r then Dyadic.one else Dyadic.zero)

let zero rows cols = make rows cols (fun _ _ -> Dyadic.zero)
let rows m = Array.length m
let cols m = Array.length m.(0)
let get m r c = m.(r).(c)

let map2 name f a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg (name ^ ": dimension mismatch");
  make (rows a) (cols a) (fun r c -> f a.(r).(c) b.(r).(c))

let add a b = map2 "Dmatrix.add" Dyadic.add a b
let sub a b = map2 "Dmatrix.sub" Dyadic.sub a b

let mul a b =
  if cols a <> rows b then invalid_arg "Dmatrix.mul: dimension mismatch";
  let inner = cols a in
  make (rows a) (cols b) (fun r c ->
      let acc = ref Dyadic.zero in
      for k = 0 to inner - 1 do
        acc := Dyadic.add !acc (Dyadic.mul a.(r).(k) b.(k).(c))
      done;
      !acc)

let scale k m = make (rows m) (cols m) (fun r c -> Dyadic.mul k m.(r).(c))

let kron a b =
  let rb = rows b and cb = cols b in
  make (rows a * rb) (cols a * cb) (fun r c ->
      Dyadic.mul a.(r / rb).(c / cb) b.(r mod rb).(c mod cb))

let adjoint m = make (cols m) (rows m) (fun r c -> Dyadic.conj m.(c).(r))

let apply m v =
  if cols m <> Array.length v then invalid_arg "Dmatrix.apply: dimension mismatch";
  Array.init (rows m) (fun r ->
      let acc = ref Dyadic.zero in
      for c = 0 to cols m - 1 do
        acc := Dyadic.add !acc (Dyadic.mul m.(r).(c) v.(c))
      done;
      !acc)

let equal a b =
  rows a = rows b && cols a = cols b
  && Array.for_all2 (fun ra rb -> Array.for_all2 Dyadic.equal ra rb) a b

let is_identity m = rows m = cols m && equal m (identity (rows m))
let is_unitary m = rows m = cols m && is_identity (mul m (adjoint m))

let is_permutation m =
  if rows m <> cols m then None
  else
    let n = rows m in
    let p = Array.make n (-1) in
    let ok = ref true in
    for c = 0 to n - 1 do
      for r = 0 to n - 1 do
        let x = m.(r).(c) in
        if Dyadic.equal x Dyadic.one then
          if p.(c) = -1 then p.(c) <- r else ok := false
        else if not (Dyadic.is_zero x) then ok := false
      done;
      if p.(c) = -1 then ok := false
    done;
    (* Columns each carry exactly one 1; injectivity follows from the total
       count of ones being n with no repeats. *)
    let seen = Array.make n false in
    Array.iter (fun r -> if r >= 0 then if seen.(r) then ok := false else seen.(r) <- true) p;
    if !ok then Some p else None

let rank m =
  let rows_n = rows m and cols_n = cols m in
  let work = Array.map Array.copy m in
  let rank = ref 0 and row = ref 0 in
  let col = ref 0 in
  while !row < rows_n && !col < cols_n do
    (* find a pivot in this column at or below [row] *)
    let pivot = ref (-1) in
    for r = !row to rows_n - 1 do
      if !pivot < 0 && not (Dyadic.is_zero work.(r).(!col)) then pivot := r
    done;
    if !pivot < 0 then incr col
    else begin
      if !pivot <> !row then begin
        let tmp = work.(!pivot) in
        work.(!pivot) <- work.(!row);
        work.(!row) <- tmp
      end;
      let p = work.(!row).(!col) in
      for r = !row + 1 to rows_n - 1 do
        let factor = work.(r).(!col) in
        if not (Dyadic.is_zero factor) then
          for k = !col to cols_n - 1 do
            (* cross-multiplication keeps everything in the ring *)
            work.(r).(k) <-
              Dyadic.sub (Dyadic.mul p work.(r).(k)) (Dyadic.mul factor work.(!row).(k))
          done
      done;
      incr rank;
      incr row;
      incr col
    end
  done;
  !rank

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun r row ->
      if r > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "[";
      Array.iteri
        (fun c x ->
          if c > 0 then Format.fprintf ppf " ";
          Dyadic.pp ppf x)
        row;
      Format.fprintf ppf "]")
    m;
  Format.fprintf ppf "@]"
