(** Truth tables over quaternary patterns and the paper's Table 1.

    A gate's behaviour on the multiple-valued domain is a function from
    patterns to patterns; these helpers tabulate it over the full
    [4^qubits] pattern space (don't-care rows included, rendered with the
    input-equals-output convention the paper adopts) and render the
    2-qubit controlled-V table in exactly the row order the paper prints. *)

(** [full_table ~qubits action] tabulates [action] over every pattern in
    lexicographic order. *)
val full_table : qubits:int -> (Pattern.t -> Pattern.t) -> (Pattern.t * Pattern.t) list

(** [table1_order] is the 16 two-qubit patterns in the row order of the
    paper's Table 1: binary rows, then binary-A/mixed-B, then
    mixed-A/binary-B, then both mixed (lexicographic inside each block). *)
val table1_order : Pattern.t list

(** [labeled_rows ~order action] numbers the rows of [order] 1-based and
    pairs every input row with its output pattern and the output's label
    within the same order — Table 1's Label/Input/Output/Label columns.
    @raise Invalid_argument if an output pattern is missing from [order]. *)
val labeled_rows :
  order:Pattern.t list ->
  (Pattern.t -> Pattern.t) ->
  (int * Pattern.t * Pattern.t * int) list

(** [pp_table ~wires ppf rows] renders rows from {!labeled_rows} with the
    given wire names, e.g. [~wires:["A"; "B"]]. *)
val pp_table :
  wires:string list -> Format.formatter -> (int * Pattern.t * Pattern.t * int) list -> unit
