type t = Quat.t array

let make qubits f = Array.init qubits f
let of_list = Array.of_list

let of_binary_code ~qubits code =
  if code < 0 || code >= 1 lsl qubits then
    invalid_arg "Pattern.of_binary_code: out of range";
  Array.init qubits (fun w -> Quat.of_bool ((code lsr (qubits - 1 - w)) land 1 = 1))

let to_binary_code p =
  let code = ref 0 and ok = ref true in
  Array.iter
    (fun v ->
      code := (!code lsl 1) lor (match v with Quat.Zero -> 0 | Quat.One -> 1 | _ -> ok := false; 0))
    p;
  if !ok then Some !code else None

let qubits = Array.length
let get p w = p.(w)

let set p w v =
  let q = Array.copy p in
  q.(w) <- v;
  q

let is_binary p = Array.for_all Quat.is_binary p
let has_one p = Array.exists (fun v -> v = Quat.One) p
let is_mixed_at p w = Quat.is_mixed p.(w)

let mixed_signature p =
  let s = ref 0 in
  Array.iteri (fun w v -> if Quat.is_mixed v then s := !s lor (1 lsl w)) p;
  !s

let equal a b = a = b

let compare a b =
  let rec go i =
    if i >= Array.length a then 0
    else match Quat.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let all ~qubits =
  let rec go w acc =
    if w = 0 then acc
    else
      go (w - 1)
        (List.concat_map (fun tail -> List.map (fun v -> v :: tail) Quat.all) acc)
  in
  List.sort compare (List.map Array.of_list (go qubits [ [] ]))

let to_string p =
  String.concat "" (Array.to_list (Array.map Quat.to_string p))

let pp ppf p = Format.pp_print_string ppf (to_string p)
