(** The paper's four-valued signal algebra.

    With pure binary primary inputs and binary-constrained control wires,
    every wire of a circuit over {controlled-V, controlled-V{^ +}, Feynman}
    carries one of only four values: [Zero], [One], [V0] = V|0⟩ and
    [V1] = V|1⟩ (Section 2; V0 = V{^ +}|1⟩ and V1 = V{^ +}|0⟩, so the six
    a-priori values collapse to four).

    The action of V on these values is the 4-cycle
    [Zero → V0 → One → V1 → Zero] and V{^ +} is its inverse — so V·V = NOT
    and V{^ +}·V = identity, mirroring the matrix identities. *)

type t = Zero | One | V0 | V1

(** All four values in the canonical order [Zero; One; V0; V1] — binary
    values first, the order used by the paper's pattern labeling. *)
val all : t list

(** [v t] is the value after a V (square root of NOT) gate. *)
val v : t -> t

(** [v_dag t] is the value after a V{^ +} gate. *)
val v_dag : t -> t

(** [not_ t] negates a binary value.
    @raise Invalid_argument on a mixed value (NOT inputs must be binary). *)
val not_ : t -> t

val is_binary : t -> bool
val is_mixed : t -> bool

(** [to_int] / [of_int] use the canonical order (0..3).
    @raise Invalid_argument if out of range. *)
val to_int : t -> int

val of_int : int -> t

(** [of_bool b] is [One] when [b], else [Zero]. *)
val of_bool : bool -> t

val equal : t -> t -> bool

(** [compare] orders by the canonical order [Zero < One < V0 < V1]. *)
val compare : t -> t -> int

(** [to_state_vector t] is the exact qubit state, a 2-element amplitude
    vector: [Zero] = |0⟩, [One] = |1⟩, [V0] = V|0⟩, [V1] = V|1⟩.  This is
    the bridge between the multiple-valued abstraction and the unitary
    semantics, used to validate the former against the latter. *)
val to_state_vector : t -> Qmath.Dyadic.t array

(** [measure_one_probability t] is the exact probability of measuring |1⟩,
    as a dyadic rational [(num, e)] meaning [num / 2^e]:
    0 for [Zero], 1 for [One], 1/2 for [V0] and [V1]. *)
val measure_one_probability : t -> int * int

val to_string : t -> string

(** [of_string s] parses ["0"], ["1"], ["V0"], ["V1"].
    @raise Invalid_argument otherwise. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
