lib/mvl/truth_table.ml: Format Fun List Pattern Quat String
