lib/mvl/quat.mli: Format Qmath
