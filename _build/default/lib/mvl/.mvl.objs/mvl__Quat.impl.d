lib/mvl/quat.ml: Dyadic Format Int Qmath
