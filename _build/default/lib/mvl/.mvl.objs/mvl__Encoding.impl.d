lib/mvl/encoding.ml: Array Char Hashtbl List Pattern Permgroup Quat String
