lib/mvl/encoding.mli: Pattern Permgroup
