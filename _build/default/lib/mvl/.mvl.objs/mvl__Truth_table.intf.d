lib/mvl/truth_table.mli: Format Pattern
