lib/mvl/pattern.mli: Format Quat
