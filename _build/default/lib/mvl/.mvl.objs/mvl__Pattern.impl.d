lib/mvl/pattern.ml: Array Format List Quat String
