(** Patterns: one {!Quat} value per wire of an n-qubit circuit.

    Wire 0 is the paper's qubit A (the most significant position when a
    binary pattern is read as a number), wire 1 is B, and so on. *)

type t = Quat.t array

(** [make qubits f] builds the pattern with [f wire] on each wire. *)
val make : int -> (int -> Quat.t) -> t

(** [of_list values] is the pattern with the given wire values. *)
val of_list : Quat.t list -> t

(** [of_binary_code ~qubits code] decodes an integer in [0 .. 2^qubits - 1]
    into a binary pattern, wire 0 = most significant bit.
    @raise Invalid_argument when out of range. *)
val of_binary_code : qubits:int -> int -> t

(** [to_binary_code p] is [Some code] for a pure binary pattern. *)
val to_binary_code : t -> int option

val qubits : t -> int
val get : t -> int -> Quat.t

(** [set p wire value] is a fresh pattern updated at [wire]. *)
val set : t -> int -> Quat.t -> t

val is_binary : t -> bool

(** [has_one p] is true when some wire carries [One].  Patterns without a
    [One] are fixed by every gate in the paper's library (a controlled gate
    fires only on control = 1 and a Feynman changes its target only when
    the control is 1), which is why they are excluded from the permutable
    domain. *)
val has_one : t -> bool

(** [is_mixed_at p wire] is true when the wire carries [V0] or [V1]. *)
val is_mixed_at : t -> int -> bool

(** [mixed_signature p] is the bitmask over wires of mixed positions
    (bit [w] set iff wire [w] is mixed). *)
val mixed_signature : t -> int

val equal : t -> t -> bool

(** Lexicographic order, wire 0 most significant, values ordered
    [Zero < One < V0 < V1] — the order behind the paper's labels. *)
val compare : t -> t -> int

(** [all ~qubits] enumerates all [4^qubits] patterns in {!compare} order. *)
val all : qubits:int -> t list

val to_string : t -> string
val pp : Format.formatter -> t -> unit
