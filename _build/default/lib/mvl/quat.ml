type t = Zero | One | V0 | V1

let all = [ Zero; One; V0; V1 ]
let v = function Zero -> V0 | V0 -> One | One -> V1 | V1 -> Zero
let v_dag = function Zero -> V1 | V1 -> One | One -> V0 | V0 -> Zero

let not_ = function
  | Zero -> One
  | One -> Zero
  | V0 | V1 -> invalid_arg "Quat.not_: mixed value on a NOT input"

let is_binary = function Zero | One -> true | V0 | V1 -> false
let is_mixed t = not (is_binary t)
let to_int = function Zero -> 0 | One -> 1 | V0 -> 2 | V1 -> 3

let of_int = function
  | 0 -> Zero
  | 1 -> One
  | 2 -> V0
  | 3 -> V1
  | _ -> invalid_arg "Quat.of_int: out of range"

let of_bool b = if b then One else Zero
let equal a b = a = b
let compare a b = Int.compare (to_int a) (to_int b)

let to_state_vector t =
  let open Qmath in
  match t with
  | Zero -> [| Dyadic.one; Dyadic.zero |]
  | One -> [| Dyadic.zero; Dyadic.one |]
  | V0 -> [| Dyadic.half_one_plus_i; Dyadic.half_one_minus_i |]
  | V1 -> [| Dyadic.half_one_minus_i; Dyadic.half_one_plus_i |]

let measure_one_probability = function
  | Zero -> (0, 0)
  | One -> (1, 0)
  | V0 | V1 -> (1, 1)

let to_string = function Zero -> "0" | One -> "1" | V0 -> "V0" | V1 -> "V1"

let of_string = function
  | "0" -> Zero
  | "1" -> One
  | "V0" | "v0" -> V0
  | "V1" | "v1" -> V1
  | s -> invalid_arg ("Quat.of_string: " ^ s)

let pp ppf t = Format.pp_print_string ppf (to_string t)
