let full_table ~qubits action =
  List.map (fun p -> (p, action p)) (Pattern.all ~qubits)

let table1_order =
  let binary = [ Quat.Zero; Quat.One ] and mixed = [ Quat.V0; Quat.V1 ] in
  let block choices_a choices_b =
    List.concat_map
      (fun a -> List.map (fun b -> Pattern.of_list [ a; b ]) choices_b)
      choices_a
  in
  block binary binary @ block binary mixed @ block mixed binary @ block mixed mixed

let labeled_rows ~order action =
  let label_of p =
    let rec find i = function
      | [] -> invalid_arg "Truth_table.labeled_rows: output pattern not in order"
      | q :: rest -> if Pattern.equal p q then i else find (i + 1) rest
    in
    find 1 order
  in
  List.mapi
    (fun i input ->
      let output = action input in
      (i + 1, input, output, label_of output))
    order

let pp_table ~wires ppf rows =
  let width = 3 in
  let cell s = Format.sprintf "%-*s" width s in
  let header =
    Format.sprintf "%-5s %s | %s %-5s" "Label"
      (String.concat " " (List.map cell wires))
      (String.concat " " (List.map cell wires))
      "Label"
  in
  Format.fprintf ppf "%s@." header;
  Format.fprintf ppf "%s@." (String.make (String.length header) '-');
  List.iter
    (fun (li, input, output, lo) ->
      let cells p =
        String.concat " "
          (List.map
             (fun w -> cell (Quat.to_string (Pattern.get p w)))
             (List.init (Pattern.qubits p) Fun.id))
      in
      Format.fprintf ppf "%-5d %s | %s %-5d@." li (cells input) (cells output) lo)
    rows
