let check_wires ~bits wires name =
  let rec distinct = function
    | [] -> true
    | w :: rest -> (not (List.mem w rest)) && distinct rest
  in
  if List.exists (fun w -> w < 0 || w >= bits) wires || not (distinct wires) then
    invalid_arg (name ^ ": bad wires")

(* Build a Revfun from a code-level transformer; wire 0 = MSB. *)
let of_code_map ~bits f =
  Revfun.of_outputs ~bits (List.init (1 lsl bits) f)

let bit ~bits code w = (code lsr (bits - 1 - w)) land 1
let flip ~bits code w = code lxor (1 lsl (bits - 1 - w))

let not_ ~bits ~wire =
  check_wires ~bits [ wire ] "Gates.not_";
  of_code_map ~bits (fun code -> flip ~bits code wire)

let cnot ~bits ~control ~target =
  check_wires ~bits [ control; target ] "Gates.cnot";
  of_code_map ~bits (fun code ->
      if bit ~bits code control = 1 then flip ~bits code target else code)

let toffoli ~bits ~control1 ~control2 ~target =
  check_wires ~bits [ control1; control2; target ] "Gates.toffoli";
  of_code_map ~bits (fun code ->
      if bit ~bits code control1 = 1 && bit ~bits code control2 = 1 then
        flip ~bits code target
      else code)

let swap ~bits ~wire1 ~wire2 =
  check_wires ~bits [ wire1; wire2 ] "Gates.swap";
  of_code_map ~bits (fun code ->
      let b1 = bit ~bits code wire1 and b2 = bit ~bits code wire2 in
      if b1 = b2 then code else flip ~bits (flip ~bits code wire1) wire2)

let fredkin ~bits ~control ~swap1 ~swap2 =
  check_wires ~bits [ control; swap1; swap2 ] "Gates.fredkin";
  of_code_map ~bits (fun code ->
      if bit ~bits code control = 1 then
        let b1 = bit ~bits code swap1 and b2 = bit ~bits code swap2 in
        if b1 = b2 then code else flip ~bits (flip ~bits code swap1) swap2
      else code)

let peres ~bits ~control1 ~control2 ~target =
  check_wires ~bits [ control1; control2; target ] "Gates.peres";
  of_code_map ~bits (fun code ->
      let a = bit ~bits code control1 and b = bit ~bits code control2 in
      let code = if a = 1 && b = 1 then flip ~bits code target else code in
      if a = 1 then flip ~bits code control2 else code)

let g1 = peres ~bits:3 ~control1:0 ~control2:1 ~target:2

let g2 =
  of_code_map ~bits:3 (fun code ->
      let a = bit ~bits:3 code 0 and c = bit ~bits:3 code 2 in
      let code = if a = 1 && c = 0 then flip ~bits:3 code 1 else code in
      if a = 1 then flip ~bits:3 code 2 else code)

let g3 =
  of_code_map ~bits:3 (fun code ->
      let a = bit ~bits:3 code 0 and b = bit ~bits:3 code 1 in
      let code = if a = 0 && b = 1 then flip ~bits:3 code 2 else code in
      if a = 1 then flip ~bits:3 code 1 else code)

let g4 =
  of_code_map ~bits:3 (fun code ->
      let a = bit ~bits:3 code 0 and b = bit ~bits:3 code 1 in
      (* R = C' XOR A'B': invert C unless A = 0 and B = 0. *)
      let code = if not (a = 0 && b = 0) then flip ~bits:3 code 2 else code in
      if a = 1 then flip ~bits:3 code 1 else code)

let toffoli3 = toffoli ~bits:3 ~control1:0 ~control2:1 ~target:2
let fredkin3 = fredkin ~bits:3 ~control:0 ~swap1:1 ~swap2:2
