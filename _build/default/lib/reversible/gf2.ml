type matrix = bool array array

let dimension m = Array.length m
let identity n = Array.init n (fun r -> Array.init n (fun c -> r = c))
let copy m = Array.map Array.copy m
let equal (a : matrix) b = a = b

let mul a b =
  let n = dimension a in
  if dimension b <> n then invalid_arg "Gf2.mul: dimension mismatch";
  Array.init n (fun r ->
      Array.init n (fun c ->
          let acc = ref false in
          for k = 0 to n - 1 do
            if a.(r).(k) && b.(k).(c) then acc := not !acc
          done;
          !acc))

(* Row-reduce a working copy; returns (rank, ops) where each op (t, c)
   records the row operation R_t := R_t XOR R_c, applied in order. *)
let eliminate m =
  let n = dimension m in
  let work = copy m in
  let ops = ref [] in
  let row_op t c =
    for k = 0 to n - 1 do
      work.(t).(k) <- work.(t).(k) <> work.(c).(k)
    done;
    ops := (t, c) :: !ops
  in
  let rank = ref 0 in
  for col = 0 to n - 1 do
    (* find a pivot at or below the diagonal *)
    let pivot = ref (-1) in
    for r = col to n - 1 do
      if !pivot < 0 && work.(r).(col) then pivot := r
    done;
    if !pivot >= 0 then begin
      incr rank;
      if !pivot <> col then row_op col !pivot;
      for r = 0 to n - 1 do
        if r <> col && work.(r).(col) then row_op r col
      done
    end
  done;
  (!rank, List.rev !ops, work)

let rank m =
  let r, _, _ = eliminate m in
  r

let is_invertible m = rank m = dimension m

let inverse m =
  let n = dimension m in
  let r, ops, _ = eliminate m in
  if r < n then None
  else begin
    (* Applying the same row ops to I yields M^-1. *)
    let inv = identity n in
    List.iter
      (fun (t, c) ->
        for k = 0 to n - 1 do
          inv.(t).(k) <- inv.(t).(k) <> inv.(c).(k)
        done)
      ops;
    Some inv
  end

(* wire-indexed vector <-> code (wire 0 = most significant code bit) *)
let vector_of_code ~bits code =
  Array.init bits (fun w -> (code lsr (bits - 1 - w)) land 1 = 1)

let code_of_vector v =
  Array.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0 v

let apply_matrix m v =
  let n = dimension m in
  Array.init n (fun r ->
      let acc = ref false in
      for c = 0 to n - 1 do
        if m.(r).(c) && v.(c) then acc := not !acc
      done;
      !acc)

let of_revfun f =
  let bits = Revfun.bits f in
  let affine = ref true in
  let matrix = Array.make_matrix bits bits false in
  for r = 0 to bits - 1 do
    let anf = Anf.of_wire f ~wire:r in
    List.iter
      (fun monomial ->
        if monomial = 0 then () (* constant term, captured by the shift *)
        else begin
          let rec split mask w found =
            if mask = 0 then found
            else if mask land 1 = 1 then
              if found >= 0 then -2 else split (mask lsr 1) (w + 1) w
            else split (mask lsr 1) (w + 1) found
          in
          match split monomial 0 (-1) with
          | -2 -> affine := false (* degree >= 2 *)
          | c when c >= 0 -> matrix.(r).(c) <- true
          | _ -> ()
        end)
      anf
  done;
  if !affine then Some (matrix, Revfun.apply f 0) else None

let to_revfun ~bits matrix shift_code =
  if dimension matrix <> bits then invalid_arg "Gf2.to_revfun: dimension";
  if not (is_invertible matrix) then invalid_arg "Gf2.to_revfun: singular matrix";
  Revfun.of_outputs ~bits
    (List.init (1 lsl bits) (fun code ->
         code_of_vector (apply_matrix matrix (vector_of_code ~bits code))
         lxor shift_code))

let synthesize_cnots m =
  let n = dimension m in
  let r, ops, _ = eliminate m in
  if r < n then invalid_arg "Gf2.synthesize_cnots: singular matrix";
  (* E_k ... E_1 M = I with E_i the recorded op, so M = E_1 ... E_k (each
     self-inverse).  A cascade applies its head first and composes as
     g_last * ... * g_first on vectors, so emit the ops reversed; the op
     R_t += R_c is the CNOT with control c and target t. *)
  List.rev_map (fun (t, c) -> (c, t)) ops

let synthesize f =
  match of_revfun f with
  | None -> None
  | Some (matrix, shift) ->
      let bits = Revfun.bits f in
      let inverse_matrix =
        match inverse matrix with
        | Some inv -> inv
        | None -> invalid_arg "Gf2.synthesize: function matrix is singular"
      in
      (* f x = M x XOR shift = M (x XOR M^-1 shift): NOT layer first. *)
      let not_mask =
        code_of_vector (apply_matrix inverse_matrix (vector_of_code ~bits shift))
      in
      Some (not_mask, synthesize_cnots matrix)
