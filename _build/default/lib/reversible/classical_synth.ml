open Permgroup

type gate = { name : string; func : Revfun.t; quantum_cost : int }
type library = { label : string; gates : gate list }

let all_wire_permutations bits =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) l)))
          l
  in
  List.map Array.of_list (perms (List.init bits Fun.id))

let all_placements ~bits ~name ~quantum_cost f =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun sigma ->
      let placed = Revfun.relabel f sigma in
      let key = Perm.key (Revfun.to_perm placed) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        let wires =
          String.concat ""
            (List.map
               (fun w -> String.make 1 (Char.chr (Char.code 'A' + w)))
               (Array.to_list sigma))
        in
        Some { name = Printf.sprintf "%s[%s]" name wires; func = placed; quantum_cost }
      end)
    (all_wire_permutations bits)

let nots ~bits =
  List.init bits (fun wire ->
      {
        name = Printf.sprintf "NOT[%c]" (Char.chr (Char.code 'A' + wire));
        func = Gates.not_ ~bits ~wire;
        quantum_cost = 0;
      })

let cnots ~bits =
  List.concat_map
    (fun control ->
      List.filter_map
        (fun target ->
          if target = control then None
          else
            Some
              {
                name =
                  Printf.sprintf "CNOT[%c<-%c]"
                    (Char.chr (Char.code 'A' + target))
                    (Char.chr (Char.code 'A' + control));
                func = Gates.cnot ~bits ~control ~target;
                quantum_cost = 1;
              })
        (List.init bits Fun.id))
    (List.init bits Fun.id)

let ncp_linear = { label = "NOT+CNOT"; gates = nots ~bits:3 @ cnots ~bits:3 }

let ncp_toffoli =
  {
    label = "NOT+CNOT+Toffoli";
    gates =
      nots ~bits:3 @ cnots ~bits:3
      @ all_placements ~bits:3 ~name:"Toffoli" ~quantum_cost:5 Gates.toffoli3;
  }

let ncp_peres =
  {
    label = "NOT+CNOT+Peres";
    gates =
      nots ~bits:3 @ cnots ~bits:3
      @ all_placements ~bits:3 ~name:"Peres" ~quantum_cost:4 Gates.g1
      @ all_placements ~bits:3 ~name:"Peres'" ~quantum_cost:4 (Revfun.inverse Gates.g1);
  }

type result = {
  library : library;
  reachable : int;
  by_gate_count : (int * int) list;
  average_gates : float;
  by_quantum_cost : (int * int) list;
  average_quantum_cost : float;
}

(* Breadth-first exploration of the whole function space by gate count. *)
let explore_gate_counts ~bits library =
  let table = Hashtbl.create (1 lsl 16) in
  let id = Revfun.identity ~bits in
  Hashtbl.replace table (Perm.key (Revfun.to_perm id)) (0, []);
  let frontier = ref [ id ] and level = ref 0 in
  while !frontier <> [] do
    incr level;
    let next = ref [] in
    List.iter
      (fun f ->
        List.iter
          (fun g ->
            let h = Revfun.compose f g.func in
            let key = Perm.key (Revfun.to_perm h) in
            if not (Hashtbl.mem table key) then begin
              Hashtbl.replace table key (!level, []);
              next := h :: !next
            end)
          library.gates)
      !frontier;
    frontier := !next
  done;
  Hashtbl.fold (fun _ (count, _) acc -> count :: acc) table []

(* Dijkstra over total quantum cost; NOT gates cost 0, so each bucket is
   processed as a worklist. *)
let explore_quantum_costs ~bits library =
  let max_cost = 256 in
  let best = Hashtbl.create (1 lsl 16) in
  let settled = Hashtbl.create (1 lsl 16) in
  let buckets = Array.make (max_cost + 1) [] in
  let id = Revfun.identity ~bits in
  let key_of f = Perm.key (Revfun.to_perm f) in
  Hashtbl.replace best (key_of id) 0;
  buckets.(0) <- [ id ];
  let results = ref [] in
  for c = 0 to max_cost do
    while buckets.(c) <> [] do
      let bucket = buckets.(c) in
      buckets.(c) <- [];
      List.iter
        (fun f ->
          let key = key_of f in
          match Hashtbl.find_opt best key with
          | Some cost when cost = c && not (Hashtbl.mem settled key) ->
              Hashtbl.add settled key ();
              results := c :: !results;
              List.iter
                (fun g ->
                  let child = Revfun.compose f g.func in
                  let child_cost = c + g.quantum_cost in
                  if child_cost <= max_cost then begin
                    let child_key = key_of child in
                    let better =
                      match Hashtbl.find_opt best child_key with
                      | Some existing -> child_cost < existing
                      | None -> true
                    in
                    if better && not (Hashtbl.mem settled child_key) then begin
                      Hashtbl.replace best child_key child_cost;
                      buckets.(child_cost) <- child :: buckets.(child_cost)
                    end
                  end)
                library.gates
          | Some _ | None -> ())
        bucket
    done
  done;
  !results

let histogram values =
  let table = Hashtbl.create 32 in
  List.iter
    (fun v -> Hashtbl.replace table v (1 + Option.value ~default:0 (Hashtbl.find_opt table v)))
    values;
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let average values =
  match values with
  | [] -> 0.0
  | _ ->
      float_of_int (List.fold_left ( + ) 0 values) /. float_of_int (List.length values)

let census ~bits library =
  let gate_counts = explore_gate_counts ~bits library in
  let quantum_costs = explore_quantum_costs ~bits library in
  {
    library;
    reachable = List.length gate_counts;
    by_gate_count = histogram gate_counts;
    average_gates = average gate_counts;
    by_quantum_cost = histogram quantum_costs;
    average_quantum_cost = average quantum_costs;
  }

let synthesize ~bits library target =
  let table = Hashtbl.create (1 lsl 16) in
  let id = Revfun.identity ~bits in
  let key_of f = Perm.key (Revfun.to_perm f) in
  Hashtbl.replace table (key_of id) [];
  if Revfun.is_identity target then Some ([], 0)
  else begin
    let frontier = ref [ (id, []) ] and answer = ref None and level = ref 0 in
    while !answer = None && !frontier <> [] do
      incr level;
      let next = ref [] in
      List.iter
        (fun (f, path) ->
          if !answer = None then
            List.iter
              (fun g ->
                if !answer = None then begin
                  let h = Revfun.compose f g.func in
                  let key = key_of h in
                  if not (Hashtbl.mem table key) then begin
                    let path = g :: path in
                    Hashtbl.replace table key path;
                    if Revfun.equal h target then answer := Some (List.rev path, !level)
                    else next := (h, path) :: !next
                  end
                end)
              library.gates)
        !frontier;
      frontier := !next
    done;
    !answer
  end

let pp_result ppf r =
  Format.fprintf ppf "@[<v>library %s (%d gates):@," r.library.label
    (List.length r.library.gates);
  Format.fprintf ppf "  reachable functions: %d@," r.reachable;
  Format.fprintf ppf "  by gate count:";
  List.iter (fun (k, n) -> Format.fprintf ppf " %d:%d" k n) r.by_gate_count;
  Format.fprintf ppf "@,  average gates: %.3f@," r.average_gates;
  Format.fprintf ppf "  by quantum cost:";
  List.iter (fun (k, n) -> Format.fprintf ppf " %d:%d" k n) r.by_quantum_cost;
  Format.fprintf ppf "@,  average quantum cost: %.3f@]" r.average_quantum_cost
