(** Linear algebra over GF(2) and constructive synthesis of linear
    reversible circuits.

    The Feynman-only fragment of the paper's library generates exactly
    the invertible linear maps over GF(2) (with NOT layers: the affine
    maps).  Gaussian elimination both {e decides} linearity structurally
    and {e synthesizes}: reducing the matrix to the identity with row
    operations reads out a CNOT sequence — a direct algorithm where the
    paper's framework would search. *)

type matrix = bool array array
(** Row-major square matrix over GF(2); [m.(r).(c)]. *)

(** {1 Matrix basics} *)

val identity : int -> matrix
val copy : matrix -> matrix
val equal : matrix -> matrix -> bool

(** [mul a b] is the matrix product over GF(2).
    @raise Invalid_argument on dimension mismatch. *)
val mul : matrix -> matrix -> matrix

(** [rank m] via Gaussian elimination. *)
val rank : matrix -> int

(** [is_invertible m] is [rank m = dimension]. *)
val is_invertible : matrix -> bool

(** [inverse m] is [Some] of the inverse when invertible. *)
val inverse : matrix -> matrix option

(** {1 Linear reversible functions}

    A linear reversible function acts on column vectors of wire values:
    output wire [r] = XOR over [c] with [m.(r).(c)] of input wire [c],
    then XOR with the affine constant [shift] (bit [w] = wire [w]'s
    inversion). *)

(** [of_revfun f] is [Some (matrix, shift_code)] when [f] is affine
    (every output's ANF has degree <= 1); [shift_code] is [f 0]. *)
val of_revfun : Revfun.t -> (matrix * int) option

(** [to_revfun ~bits matrix shift_code] builds the affine function.
    @raise Invalid_argument when the matrix is singular or dimensions
    disagree. *)
val to_revfun : bits:int -> matrix -> int -> Revfun.t

(** {1 CNOT synthesis} *)

(** [synthesize_cnots matrix] is a list of [(control, target)] pairs
    whose CNOT product implements the linear map, obtained by Gaussian
    elimination (at most n² gates; not necessarily minimal).
    @raise Invalid_argument when the matrix is singular. *)
val synthesize_cnots : matrix -> (int * int) list

(** [synthesize f] factors an affine reversible function into an input
    NOT layer plus CNOTs: [Some (not_mask, cnots)]; [None] when [f] is
    not affine.  The test suite verifies the factorization recomposes to
    [f] exactly. *)
val synthesize : Revfun.t -> (int * (int * int) list) option
