(** Reversible boolean functions on [bits] wires, i.e. permutations of the
    [2^bits] binary codes.  Wire 0 is the most significant bit of a code
    (the paper's qubit A), matching the pattern encoding, so the
    restriction of a 38-point circuit permutation to its binary block is
    directly a [Revfun.t] on the same codes.

    The paper labels binary patterns 1..8; our codes are 0-based, so the
    paper's cycle [(5,7,6,8)] (Peres) is code cycle [(4,6,5,7)] — the
    printer adds the 1 back. *)

type t

(** [of_perm ~bits perm] wraps a permutation of degree [2^bits].
    @raise Invalid_argument on degree mismatch. *)
val of_perm : bits:int -> Permgroup.Perm.t -> t

(** [of_outputs ~bits outputs] builds the function with truth-table output
    column [outputs] (input codes in increasing order).
    @raise Invalid_argument if not a permutation of the codes. *)
val of_outputs : bits:int -> int list -> t

val identity : bits:int -> t
val bits : t -> int
val to_perm : t -> Permgroup.Perm.t

(** [apply f code] evaluates the function on an input code. *)
val apply : t -> int -> int

(** [compose f g] applies [f] first, then [g]. *)
val compose : t -> t -> t

val inverse : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val is_identity : t -> bool

(** [xor_layer ~bits mask] is the NOT-gate layer [code -> code XOR mask] —
    an element of the paper's group N.
    @raise Invalid_argument if [mask] is out of range. *)
val xor_layer : bits:int -> int -> t

(** [not_layer_group ~bits] is all [2^bits] elements of N, indexed by mask. *)
val not_layer_group : bits:int -> t list

(** [fixes_zero f] is true when [f] fixes the all-zero code — membership
    in the paper's subgroup G (Theorem 2). *)
val fixes_zero : t -> bool

(** [output_column f] is the truth-table output column. *)
val output_column : t -> int list

(** [relabel f sigma] renames wire [w] to [sigma.(w)] (conjugation by the
    induced code permutation) — "the same circuit with the wires
    permuted".
    @raise Invalid_argument if [sigma] is not a permutation of the
    wires. *)
val relabel : t -> int array -> t

(** [wire_outputs f ~wire] is the output bit of [wire] for each input code
    — one column of the classical truth table. *)
val wire_outputs : t -> wire:int -> bool list

(** [pp] prints 1-based cycle notation (the paper's format). *)
val pp : Format.formatter -> t -> unit

(** [pp_truth_table] prints the full binary truth table. *)
val pp_truth_table : Format.formatter -> t -> unit
