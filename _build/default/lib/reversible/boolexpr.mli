(** Boolean formulas over wire variables, for specifying reversible
    functions the way the paper writes them: g2 is
    "P = A, Q = B⊕AC', R = C⊕A", which parses here as the three formulas
    ["A"], ["B^AC'"], ["C^A"].

    Syntax (precedence low to high):
    - [|] : OR
    - [^] or [+] : XOR
    - [&] or juxtaposition : AND  (so ["AB"] is A AND B)
    - postfix ['] or prefix [!] : NOT
    - atoms: variables [A]..[Z] (wire 0 = A), constants [0] and [1],
      parenthesized formulas. *)

type t =
  | Const of bool
  | Var of int (** wire index *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

(** [parse ~bits s] parses a formula; variables must name wires below
    [bits].
    @raise Invalid_argument on syntax errors or out-of-range variables. *)
val parse : bits:int -> string -> t

(** [eval expr code] evaluates with wire [w] bound to bit
    [bits-1-w] of [code] — i.e. wire 0 (A) is the most significant bit.
    The code's width is implied by the largest variable; pass codes from
    the same [bits] used to parse. *)
val eval : bits:int -> t -> int -> bool

(** [to_anf ~bits expr] is the algebraic normal form. *)
val to_anf : bits:int -> t -> Anf.t

val pp : Format.formatter -> t -> unit

(** [revfun_of_formulas ~bits formulas] builds the reversible function
    whose output wire [w] computes the [w]-th formula.
    @raise Invalid_argument if the arity is wrong or the resulting map is
    not a bijection (the spec is not reversible). *)
val revfun_of_formulas : bits:int -> string list -> Revfun.t
