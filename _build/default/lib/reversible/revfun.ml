open Permgroup

type t = { bits : int; perm : Perm.t }

let of_perm ~bits perm =
  if bits < 1 then invalid_arg "Revfun.of_perm: bits must be positive";
  if Perm.degree perm <> 1 lsl bits then invalid_arg "Revfun.of_perm: degree mismatch";
  { bits; perm }

let of_outputs ~bits outputs =
  of_perm ~bits (Perm.of_array (Array.of_list outputs))

let identity ~bits = of_perm ~bits (Perm.identity (1 lsl bits))
let bits f = f.bits
let to_perm f = f.perm
let apply f code = Perm.apply f.perm code

let compose f g =
  if f.bits <> g.bits then invalid_arg "Revfun.compose: bits mismatch";
  { f with perm = Perm.mul f.perm g.perm }

let inverse f = { f with perm = Perm.inverse f.perm }
let equal f g = f.bits = g.bits && Perm.equal f.perm g.perm

let compare f g =
  match Int.compare f.bits g.bits with 0 -> Perm.compare f.perm g.perm | c -> c

let is_identity f = Perm.is_identity f.perm

let xor_layer ~bits mask =
  if mask < 0 || mask >= 1 lsl bits then invalid_arg "Revfun.xor_layer: mask out of range";
  { bits; perm = Perm.unsafe_of_array (Array.init (1 lsl bits) (fun code -> code lxor mask)) }

let not_layer_group ~bits = List.init (1 lsl bits) (fun mask -> xor_layer ~bits mask)
let fixes_zero f = apply f 0 = 0
let output_column f = List.init (1 lsl f.bits) (apply f)

let wire_outputs f ~wire =
  if wire < 0 || wire >= f.bits then invalid_arg "Revfun.wire_outputs: wire out of range";
  List.init (1 lsl f.bits) (fun code -> (apply f code lsr (f.bits - 1 - wire)) land 1 = 1)

let relabel f sigma =
  if Array.length sigma <> f.bits then invalid_arg "Revfun.relabel: arity";
  let wire_perm = Perm.of_array sigma in
  let code_map code =
    let out = ref 0 in
    for w = 0 to f.bits - 1 do
      if (code lsr (f.bits - 1 - w)) land 1 = 1 then
        out := !out lor (1 lsl (f.bits - 1 - Perm.apply wire_perm w))
    done;
    !out
  in
  let sigma_fun = Perm.of_array (Array.init (1 lsl f.bits) code_map) in
  (* f' = sigma^-1 ; f ; sigma (apply left first) *)
  { f with perm = Perm.mul (Perm.mul (Perm.inverse sigma_fun) f.perm) sigma_fun }

let pp ppf f = Perm.pp ppf f.perm

let pp_truth_table ppf f =
  let bit code w = (code lsr (f.bits - 1 - w)) land 1 in
  for code = 0 to (1 lsl f.bits) - 1 do
    let out = apply f code in
    for w = 0 to f.bits - 1 do
      Format.fprintf ppf "%d" (bit code w)
    done;
    Format.fprintf ppf " -> ";
    for w = 0 to f.bits - 1 do
      Format.fprintf ppf "%d" (bit out w)
    done;
    Format.fprintf ppf "@."
  done
