(** Algebraic normal form (positive-polarity Reed–Muller expansion) of the
    output wires of a reversible function.

    The paper describes its circuits by per-output XOR formulas — e.g.
    Peres is "P = A, Q = B⊕A, R = C⊕AB".  Each output bit of a boolean
    function has a unique representation as an XOR of AND-monomials over
    the inputs; this module computes it (Möbius transform) and prints it
    in the paper's style, so synthesized functions can be reported exactly
    the way the paper reports them. *)

type monomial = int
(** A monomial is a bitmask over wires: bit [w] set means wire [w] is a
    factor; [0] is the constant-1 monomial. *)

type t = monomial list
(** An ANF: the XOR of its monomials, sorted ascending; [[]] is the
    constant 0. *)

(** [of_outputs ~bits column] is the ANF of a single-output boolean
    function given as its truth-table column (index = input code, wire 0
    = most significant bit).
    @raise Invalid_argument if the column length is not [2^bits]. *)
val of_outputs : bits:int -> bool list -> t

(** [of_wire f ~wire] is the ANF of one output wire of a reversible
    function. *)
val of_wire : Revfun.t -> wire:int -> t

(** [eval ~bits anf code] evaluates the ANF on an input code. *)
val eval : bits:int -> t -> int -> bool

(** [to_string ~bits anf] prints e.g. ["C + AB"] ("+" is XOR, juxtaposition
    is AND, ["1"] the constant); ["0"] for the empty ANF. *)
val to_string : bits:int -> t -> string

(** [describe f] prints all output wires in the paper's style, e.g.
    ["P = A, Q = A+B, R = AB+C"] for Peres (output names P, Q, R, ...
    for up to three wires, then O4, O5, ...). *)
val describe : Revfun.t -> string

(** [degree anf] is the largest monomial size (0 for constants); the
    function is linear over GF(2) iff every output wire has degree <= 1. *)
val degree : t -> int

(** [is_linear f] is true when every output wire of [f] has an ANF of
    degree at most 1 — exactly the functions realizable with CNOT and NOT
    gates alone. *)
val is_linear : Revfun.t -> bool
