(** Classical gate-library synthesis over all n-bit reversible functions.

    The paper's conclusion argues that libraries containing Peres-family
    gates synthesize 3-bit circuits with fewer gates (and lower quantum
    cost) than the classical NOT/CNOT/Toffoli libraries used in prior
    work [5,10,16].  This module makes that claim checkable: breadth-first
    (or Dijkstra, for weighted gate costs) search over the whole function
    space — 2ⁿ! states, 40320 for n = 3 — computing the minimal gate count
    or total quantum cost of {e every} reversible function under a given
    classical gate library. *)

type gate = { name : string; func : Revfun.t; quantum_cost : int }
(** One library gate: a classical reversible function with the quantum
    cost of its cheapest known realization (from this repository's own
    synthesis: NOT 0, CNOT 1, Peres family 4, Toffoli/Fredkin-style 5+). *)

type library = { label : string; gates : gate list }

(** {1 Canned 3-bit libraries} *)

(** NOT + CNOT + Toffoli (all wire placements) — the classical baseline
    of [5,10]. *)
val ncp_toffoli : library

(** NOT + CNOT + Peres (all wire placements of g1 and its inverse) — the
    library the paper advocates. *)
val ncp_peres : library

(** NOT + CNOT only — synthesizes exactly the affine-linear functions. *)
val ncp_linear : library

(** [all_placements ~bits ~name ~quantum_cost f] instantiates a 3-bit
    gate template on every wire relabeling, deduplicated. *)
val all_placements :
  bits:int -> name:string -> quantum_cost:int -> Revfun.t -> gate list

(** {1 Synthesis} *)

type result = {
  library : library;
  reachable : int; (** how many of the [2^n!] functions are realizable *)
  by_gate_count : (int * int) list; (** gate count -> #functions *)
  average_gates : float; (** over reachable functions *)
  by_quantum_cost : (int * int) list; (** total quantum cost -> #functions *)
  average_quantum_cost : float;
}

(** [census ~bits library] explores the whole space (use [bits <= 3]; the
    3-bit space has 40320 states).  Gate counts come from breadth-first
    levels; quantum costs from a Dijkstra pass with per-gate costs. *)
val census : bits:int -> library -> result

(** [synthesize ~bits library target] is a minimal-gate-count
    factorization of [target] into library gates, or [None] when
    unreachable. *)
val synthesize : bits:int -> library -> Revfun.t -> (gate list * int) option

val pp_result : Format.formatter -> result -> unit
