lib/reversible/revfun.mli: Format Permgroup
