lib/reversible/boolexpr.ml: Anf Char Format List Printf Revfun String
