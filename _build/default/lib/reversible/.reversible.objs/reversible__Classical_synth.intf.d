lib/reversible/classical_synth.mli: Format Revfun
