lib/reversible/boolexpr.mli: Anf Format Revfun
