lib/reversible/gf2.ml: Anf Array List Revfun
