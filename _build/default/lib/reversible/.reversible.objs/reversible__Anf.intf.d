lib/reversible/anf.mli: Revfun
