lib/reversible/anf.ml: Array Char Fun Int List Printf Revfun String
