lib/reversible/gf2.mli: Revfun
