lib/reversible/gates.ml: List Revfun
