lib/reversible/spec.ml: Boolexpr Gates List Permgroup Revfun String
