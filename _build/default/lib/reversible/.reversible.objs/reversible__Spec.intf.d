lib/reversible/spec.mli: Revfun
