lib/reversible/revfun.ml: Array Format Int List Perm Permgroup
