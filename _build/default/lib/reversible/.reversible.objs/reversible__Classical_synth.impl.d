lib/reversible/classical_synth.ml: Array Char Format Fun Gates Hashtbl Int List Option Perm Permgroup Printf Revfun String
