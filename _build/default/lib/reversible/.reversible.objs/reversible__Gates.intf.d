lib/reversible/gates.mli: Revfun
