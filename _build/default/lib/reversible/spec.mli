(** Parsing reversible-circuit specifications for the CLI and examples. *)

(** [of_output_list ~bits s] parses a comma-separated truth-table output
    column, e.g. ["0,1,2,3,4,5,7,6"] for the 3-bit Toffoli.
    @raise Invalid_argument on malformed input. *)
val of_output_list : bits:int -> string -> Revfun.t

(** [of_cycles ~bits s] parses the paper's 1-based cycle notation over
    binary pattern labels, e.g. ["(7,8)"] for Toffoli.
    @raise Invalid_argument on malformed input. *)
val of_cycles : bits:int -> string -> Revfun.t

(** [of_name s] looks up a named 3-bit circuit: "toffoli", "peres"/"g1",
    "g2", "g3", "g4", "fredkin", "identity". *)
val of_name : string -> Revfun.t option

(** [of_formulas ~bits s] parses semicolon-separated per-output boolean
    formulas in {!Boolexpr} syntax, e.g. ["A; B^A; C^AB"] for the Peres
    gate (P = A, Q = B⊕A, R = C⊕AB).
    @raise Invalid_argument on syntax errors or non-reversible formulas. *)
val of_formulas : bits:int -> string -> Revfun.t

(** [parse ~bits s] tries, in order: a known name, cycle notation,
    semicolon-separated formulas, an output list.
    @raise Invalid_argument when nothing parses. *)
val parse : bits:int -> string -> Revfun.t
