(** The classical reversible gate zoo, as {!Revfun} values.

    Wires are 0-based with wire 0 = the paper's qubit A (most significant
    bit).  The paper's named circuits g1..g4 are the four representative
    cost-4 Peres-family circuits of its Section 5. *)

(** [not_ ~bits ~wire] inverts one wire. *)
val not_ : bits:int -> wire:int -> Revfun.t

(** [cnot ~bits ~control ~target] is the Feynman gate
    [target := target XOR control].
    @raise Invalid_argument if wires collide or are out of range. *)
val cnot : bits:int -> control:int -> target:int -> Revfun.t

(** [toffoli ~bits ~control1 ~control2 ~target] is the doubly-controlled
    NOT. *)
val toffoli : bits:int -> control1:int -> control2:int -> target:int -> Revfun.t

(** [fredkin ~bits ~control ~swap1 ~swap2] swaps two wires when the
    control is 1. *)
val fredkin : bits:int -> control:int -> swap1:int -> swap2:int -> Revfun.t

(** [swap ~bits ~wire1 ~wire2] exchanges two wires. *)
val swap : bits:int -> wire1:int -> wire2:int -> Revfun.t

(** [peres ~bits ~control1 ~control2 ~target] computes
    [control2 := control2 XOR control1] and
    [target := target XOR (control1 AND control2_in)] — the paper's g1
    when applied to wires A, B, C of a 3-bit function. *)
val peres : bits:int -> control1:int -> control2:int -> target:int -> Revfun.t

(** {1 The paper's four representative cost-4 circuits (3 bits)} *)

(** g1 = (5,7,6,8): P = A, Q = B⊕A, R = C⊕AB — the Peres gate. *)
val g1 : Revfun.t

(** g2 = (5,8,7,6): P = A, Q = B⊕AC', R = C⊕A. *)
val g2 : Revfun.t

(** g3 = (3,4)(5,7)(6,8): P = A, Q = B⊕A, R = C⊕A'B. *)
val g3 : Revfun.t

(** g4 = (3,4)(5,8)(6,7): P = A, Q = B⊕A, R = C'⊕A'B'. *)
val g4 : Revfun.t

(** The standard 3-bit Toffoli (controls A, B, target C): (7,8). *)
val toffoli3 : Revfun.t

(** The standard 3-bit Fredkin (control A, swaps B, C): (6,7). *)
val fredkin3 : Revfun.t
