let of_output_list ~bits s =
  let outputs =
    String.split_on_char ',' s
    |> List.map (fun part ->
           match int_of_string_opt (String.trim part) with
           | Some v -> v
           | None -> invalid_arg ("Spec.of_output_list: bad entry " ^ part))
  in
  if List.length outputs <> 1 lsl bits then
    invalid_arg "Spec.of_output_list: wrong number of outputs";
  Revfun.of_outputs ~bits outputs

let of_cycles ~bits s =
  Revfun.of_perm ~bits (Permgroup.Cycles.of_string ~degree:(1 lsl bits) s)

let of_name s =
  match String.lowercase_ascii s with
  | "toffoli" -> Some Gates.toffoli3
  | "peres" | "g1" -> Some Gates.g1
  | "g2" -> Some Gates.g2
  | "g3" -> Some Gates.g3
  | "g4" -> Some Gates.g4
  | "fredkin" -> Some Gates.fredkin3
  | "identity" -> Some (Revfun.identity ~bits:3)
  | _ -> None

let of_formulas ~bits s =
  Boolexpr.revfun_of_formulas ~bits (List.map String.trim (String.split_on_char ';' s))

let parse ~bits s =
  match of_name s with
  | Some f when Revfun.bits f = bits -> f
  | Some _ -> invalid_arg "Spec.parse: named circuit has a different width"
  | None -> (
      let trimmed = String.trim s in
      if String.length trimmed > 0 && trimmed.[0] = '(' then of_cycles ~bits trimmed
      else if String.contains trimmed ';' then of_formulas ~bits trimmed
      else of_output_list ~bits trimmed)
