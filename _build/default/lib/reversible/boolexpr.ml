type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

(* Recursive-descent parser.  Grammar, low precedence first:
     or    := xor ('|' xor)*
     xor   := and (('^'|'+') and)*
     and   := unary (('&')? unary)*      juxtaposition is AND
     unary := '!' unary | atom '''*
     atom  := variable | '0' | '1' | '(' or ')' *)
let parse ~bits s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = invalid_arg ("Boolexpr.parse: " ^ msg) in
  let skip () = while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do incr pos done in
  let peek () =
    skip ();
    if !pos < n then Some s.[!pos] else None
  in
  let starts_atom c =
    (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c = '0' || c = '1' || c = '('
  in
  let rec parse_or () =
    let left = parse_xor () in
    match peek () with
    | Some '|' ->
        incr pos;
        Or (left, parse_or ())
    | _ -> left
  and parse_xor () =
    let left = parse_and () in
    match peek () with
    | Some ('^' | '+') ->
        incr pos;
        Xor (left, parse_xor ())
    | _ -> left
  and parse_and () =
    let left = parse_unary () in
    match peek () with
    | Some '&' ->
        incr pos;
        And (left, parse_and ())
    | Some c when c = '!' || starts_atom c -> And (left, parse_and ())
    | _ -> left
  and parse_unary () =
    match peek () with
    | Some '!' ->
        incr pos;
        Not (parse_unary ())
    | _ ->
        let atom = parse_atom () in
        let rec primes acc =
          match peek () with
          | Some '\'' ->
              incr pos;
              primes (Not acc)
          | _ -> acc
        in
        primes atom
  and parse_atom () =
    match peek () with
    | Some '0' ->
        incr pos;
        Const false
    | Some '1' ->
        incr pos;
        Const true
    | Some '(' ->
        incr pos;
        let inner = parse_or () in
        (match peek () with
        | Some ')' -> incr pos
        | _ -> fail "expected ')'");
        inner
    | Some c when (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ->
        incr pos;
        let wire = Char.code (Char.uppercase_ascii c) - Char.code 'A' in
        if wire >= bits then fail (Printf.sprintf "variable %c exceeds %d wires" c bits);
        Var wire
    | _ -> fail "expected an atom"
  in
  let expr = parse_or () in
  skip ();
  if !pos <> n then fail "trailing input";
  expr

let rec eval ~bits expr code =
  match expr with
  | Const b -> b
  | Var w -> (code lsr (bits - 1 - w)) land 1 = 1
  | Not e -> not (eval ~bits e code)
  | And (a, b) -> eval ~bits a code && eval ~bits b code
  | Or (a, b) -> eval ~bits a code || eval ~bits b code
  | Xor (a, b) -> eval ~bits a code <> eval ~bits b code

let to_anf ~bits expr =
  Anf.of_outputs ~bits (List.init (1 lsl bits) (eval ~bits expr))

let rec pp ppf = function
  | Const b -> Format.pp_print_string ppf (if b then "1" else "0")
  | Var w -> Format.fprintf ppf "%c" (Char.chr (Char.code 'A' + w))
  | Not e -> Format.fprintf ppf "%a'" pp_atom e
  | And (a, b) -> Format.fprintf ppf "%a%a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf ppf "%a|%a" pp a pp b
  | Xor (a, b) -> Format.fprintf ppf "%a^%a" pp a pp b

and pp_atom ppf e =
  match e with
  | Const _ | Var _ | Not _ -> pp ppf e
  | And _ | Or _ | Xor _ -> Format.fprintf ppf "(%a)" pp e

let revfun_of_formulas ~bits formulas =
  if List.length formulas <> bits then
    invalid_arg "Boolexpr.revfun_of_formulas: one formula per wire";
  let exprs = List.map (parse ~bits) formulas in
  let outputs =
    List.init (1 lsl bits) (fun code ->
        List.fold_left
          (fun acc expr -> (acc lsl 1) lor (if eval ~bits expr code then 1 else 0))
          0 exprs)
  in
  match Revfun.of_outputs ~bits outputs with
  | f -> f
  | exception Invalid_argument _ ->
      invalid_arg "Boolexpr.revfun_of_formulas: formulas are not reversible"
