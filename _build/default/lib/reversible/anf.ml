type monomial = int
type t = monomial list

let of_outputs ~bits column =
  let n = 1 lsl bits in
  if List.length column <> n then invalid_arg "Anf.of_outputs: column length";
  (* Moebius transform in code space: a.(s) = XOR of f over subsets of s. *)
  let a = Array.of_list (List.map (fun b -> if b then 1 else 0) column) in
  for i = 0 to bits - 1 do
    let bit = 1 lsl i in
    for s = 0 to n - 1 do
      if s land bit <> 0 then a.(s) <- a.(s) lxor a.(s lxor bit)
    done
  done;
  (* Convert code-space masks (bit i = code bit i) to wire-space masks
     (bit w = wire w, where wire 0 is the most significant code bit). *)
  let to_wire_mask mask =
    let out = ref 0 in
    for w = 0 to bits - 1 do
      if mask land (1 lsl (bits - 1 - w)) <> 0 then out := !out lor (1 lsl w)
    done;
    !out
  in
  let monomials = ref [] in
  for s = n - 1 downto 0 do
    if a.(s) = 1 then monomials := to_wire_mask s :: !monomials
  done;
  List.sort Int.compare !monomials

let of_wire f ~wire = of_outputs ~bits:(Revfun.bits f) (Revfun.wire_outputs f ~wire)

let eval ~bits anf code =
  let monomial_value mask =
    let rec go w = w >= bits || ((mask land (1 lsl w) = 0 || (code lsr (bits - 1 - w)) land 1 = 1) && go (w + 1)) in
    go 0
  in
  List.fold_left (fun acc m -> if monomial_value m then not acc else acc) false anf

let wire_letter w = String.make 1 (Char.chr (Char.code 'A' + w))

let to_string ~bits anf =
  match anf with
  | [] -> "0"
  | monomials ->
      String.concat "+"
        (List.map
           (fun mask ->
             if mask = 0 then "1"
             else
               String.concat ""
                 (List.filter_map
                    (fun w -> if mask land (1 lsl w) <> 0 then Some (wire_letter w) else None)
                    (List.init bits Fun.id)))
           monomials)

let output_name bits wire =
  if bits <= 3 then String.make 1 "PQR".[wire] else Printf.sprintf "O%d" (wire + 1)

let describe f =
  let bits = Revfun.bits f in
  String.concat ", "
    (List.init bits (fun wire ->
         Printf.sprintf "%s = %s" (output_name bits wire)
           (to_string ~bits (of_wire f ~wire))))

let degree anf =
  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go mask 0
  in
  List.fold_left (fun acc m -> max acc (popcount m)) 0 anf

let is_linear f =
  let bits = Revfun.bits f in
  List.for_all
    (fun wire -> degree (of_wire f ~wire) <= 1)
    (List.init bits Fun.id)
