(** Simulation of gate cascades as exact unitaries.

    A cascade is a list of unitary matrices applied left-to-right (the
    first list element acts first), matching the paper's product
    convention [g = d1 * d2 * ... * dt]. *)

(** [unitary_of_cascade ~qubits gates] multiplies the gate matrices in
    application order into one [2^qubits]-dimensional unitary; the empty
    cascade gives the identity.
    @raise Invalid_argument on dimension mismatch. *)
val unitary_of_cascade : qubits:int -> Qmath.Dmatrix.t list -> Qmath.Dmatrix.t

(** [run ~qubits gates state] applies the cascade to a state. *)
val run : qubits:int -> Qmath.Dmatrix.t list -> State.t -> State.t

(** [classical_function ~qubits gates] is [Some outputs] when the cascade
    maps every computational basis state to a computational basis state;
    [outputs.(code)] is the image code.  This is how a synthesized quantum
    cascade is certified to implement a classical reversible function. *)
val classical_function : qubits:int -> Qmath.Dmatrix.t list -> int array option

(** [output_pattern ~qubits gates input] runs the cascade on a quaternary
    input pattern and recovers the output pattern, or [None] when the
    output state is not a product of quaternary wire values (cannot happen
    for cascades respecting the paper's control-purity constraint, but can
    for arbitrary cascades). *)
val output_pattern :
  qubits:int -> Qmath.Dmatrix.t list -> Mvl.Pattern.t -> Mvl.Pattern.t option
