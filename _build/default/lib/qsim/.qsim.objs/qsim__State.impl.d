lib/qsim/state.ml: Array Dmatrix Dyadic Format List Mvl Prob Qmath
