lib/qsim/circuit_sim.ml: Dmatrix List Qmath State
