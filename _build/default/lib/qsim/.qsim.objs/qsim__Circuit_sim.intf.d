lib/qsim/circuit_sim.mli: Mvl Qmath State
