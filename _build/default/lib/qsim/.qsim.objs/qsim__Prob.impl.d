lib/qsim/prob.ml: Format Int List
