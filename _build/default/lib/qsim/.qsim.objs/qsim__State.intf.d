lib/qsim/state.mli: Format Mvl Prob Qmath
