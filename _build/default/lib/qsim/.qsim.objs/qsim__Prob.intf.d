lib/qsim/prob.mli: Format
