open Qmath

let unitary_of_cascade ~qubits gates =
  (* The cascade g1; g2 acts on a column state as matrix g2 * g1. *)
  List.fold_left (fun acc g -> Dmatrix.mul g acc) (Dmatrix.identity (1 lsl qubits)) gates

let run ~qubits gates state = State.apply (unitary_of_cascade ~qubits gates) state

let classical_function ~qubits gates =
  Dmatrix.is_permutation (unitary_of_cascade ~qubits gates)

let output_pattern ~qubits gates input =
  State.to_pattern (run ~qubits gates (State.of_pattern input))
