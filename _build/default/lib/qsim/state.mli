(** Exact state vectors for n-qubit systems.

    Amplitudes live in the Gaussian-dyadic ring {!Qmath.Dyadic}, so two
    states are equal iff they compare equal — no tolerance knobs.  Basis
    index convention matches the rest of the repository: qubit 0 (the
    paper's A) is the most significant bit. *)

type t

(** [basis ~qubits code] is the computational basis state |code⟩.
    @raise Invalid_argument when the code is out of range. *)
val basis : qubits:int -> int -> t

(** [of_pattern p] is the product state whose wires carry the quaternary
    values of [p] — e.g. the pattern [1,V0,0] denotes |1⟩ ⊗ V|0⟩ ⊗ |0⟩.
    This realizes the paper's claim that the multiple-valued abstraction
    describes genuine quantum states. *)
val of_pattern : Mvl.Pattern.t -> t

(** [of_amplitudes amps] wraps an amplitude vector whose length must be a
    power of two.
    @raise Invalid_argument otherwise. *)
val of_amplitudes : Qmath.Dyadic.t array -> t

val qubits : t -> int
val dimension : t -> int
val amplitude : t -> int -> Qmath.Dyadic.t

(** [apply m s] applies a unitary (as a matrix) to the state.
    @raise Invalid_argument on dimension mismatch. *)
val apply : Qmath.Dmatrix.t -> t -> t

val equal : t -> t -> bool

(** [is_normalized s] checks that the squared amplitudes sum to exactly 1. *)
val is_normalized : t -> bool

(** [basis_probability s code] is the exact probability of observing
    |code⟩ when measuring all wires. *)
val basis_probability : t -> int -> Prob.t

(** [one_probability s ~wire] is the exact probability that measuring
    [wire] yields 1. *)
val one_probability : t -> wire:int -> Prob.t

(** [distribution s] is the full measurement distribution over codes. *)
val distribution : t -> Prob.t array

(** [to_pattern s] recovers a quaternary pattern when the state is exactly
    a product of the four {!Mvl.Quat} wire states, [None] otherwise (e.g.
    for entangled states). *)
val to_pattern : t -> Mvl.Pattern.t option

(** [product_across s ~cut] is true when the state factorizes as
    (wires 0..cut-1) ⊗ (wires cut..n-1): exactly, the amplitude matrix
    reshaped to [2^cut x 2^(n-cut)] has rank at most 1 (all 2x2 minors
    vanish — checked in the dyadic ring, no tolerance).
    @raise Invalid_argument unless [0 < cut < qubits]. *)
val product_across : t -> cut:int -> bool

(** [is_product s] is true when the state is a full product of one-qubit
    states (not necessarily {!Mvl.Quat} states): product across every
    prefix cut. *)
val is_product : t -> bool

(** [is_entangled s] is [not (is_product s)]. *)
val is_entangled : t -> bool

(** [schmidt_rank s ~cut] is the exact Schmidt rank across the
    bipartition (wires [0..cut-1] | wires [cut..n-1]): 1 for product
    states, up to [min 2^cut 2^(n-cut)] for maximally entangled ones.
    @raise Invalid_argument unless [0 < cut < qubits]. *)
val schmidt_rank : t -> cut:int -> int

val pp : Format.formatter -> t -> unit
