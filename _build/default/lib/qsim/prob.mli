(** Exact dyadic probabilities: non-negative rationals [num / 2^exp].

    All measurement probabilities arising from the paper's gate set are of
    this form (amplitudes live in the Gaussian-dyadic ring), so the
    automata analyses can be carried out with no rounding at all. *)

type t

val zero : t
val one : t
val half : t

(** [make num exp] is [num / 2^exp], normalized to lowest terms.
    @raise Invalid_argument if [num < 0] or [exp < 0]. *)
val make : int -> int -> t

(** [num t] and [exp t] expose the lowest-terms representation. *)
val num : t -> int

val exp : t -> int
val add : t -> t -> t

(** [sub a b] requires [a >= b].
    @raise Invalid_argument otherwise. *)
val sub : t -> t -> t

val mul : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val to_float : t -> float
val pp : Format.formatter -> t -> unit

(** [sum l] adds a list of probabilities. *)
val sum : t list -> t

(** [of_norm_sq d] converts {!Qmath.Dyadic.norm_sq} output. *)
val of_norm_sq : int * int -> t
