type t = { num : int; exp : int }

let rec normalize num exp =
  if exp > 0 && num land 1 = 0 then normalize (num asr 1) (exp - 1) else { num; exp }

let make num exp =
  if num < 0 || exp < 0 then invalid_arg "Prob.make: negative component";
  if num = 0 then { num = 0; exp = 0 } else normalize num exp

let zero = { num = 0; exp = 0 }
let one = { num = 1; exp = 0 }
let half = { num = 1; exp = 1 }
let num t = t.num
let exp t = t.exp

let add a b =
  let e = max a.exp b.exp in
  make ((a.num lsl (e - a.exp)) + (b.num lsl (e - b.exp))) e

let sub a b =
  let e = max a.exp b.exp in
  let n = (a.num lsl (e - a.exp)) - (b.num lsl (e - b.exp)) in
  if n < 0 then invalid_arg "Prob.sub: negative result";
  make n e

let mul a b = make (a.num * b.num) (a.exp + b.exp)
let equal a b = a.num = b.num && a.exp = b.exp

let compare a b =
  let e = max a.exp b.exp in
  Int.compare (a.num lsl (e - a.exp)) (b.num lsl (e - b.exp))

let is_zero t = t.num = 0
let to_float t = ldexp (float_of_int t.num) (-t.exp)

let pp ppf t =
  if t.exp = 0 then Format.fprintf ppf "%d" t.num
  else Format.fprintf ppf "%d/%d" t.num (1 lsl t.exp)

let sum l = List.fold_left add zero l
let of_norm_sq (n, e) = make n e
