open Qmath

type t = { qubits : int; amps : Dyadic.t array }

let log2_exact n =
  let rec go k m = if m = 1 then Some k else if m land 1 = 1 then None else go (k + 1) (m asr 1) in
  if n <= 0 then None else go 0 n

let of_amplitudes amps =
  match log2_exact (Array.length amps) with
  | Some qubits -> { qubits; amps = Array.copy amps }
  | None -> invalid_arg "State.of_amplitudes: length is not a power of two"

let basis ~qubits code =
  let dim = 1 lsl qubits in
  if code < 0 || code >= dim then invalid_arg "State.basis: code out of range";
  { qubits; amps = Array.init dim (fun i -> if i = code then Dyadic.one else Dyadic.zero) }

let vec_kron a b =
  let nb = Array.length b in
  Array.init (Array.length a * nb) (fun i -> Dyadic.mul a.(i / nb) b.(i mod nb))

let of_pattern p =
  let qubits = Mvl.Pattern.qubits p in
  let amps = ref [| Dyadic.one |] in
  for w = 0 to qubits - 1 do
    amps := vec_kron !amps (Mvl.Quat.to_state_vector (Mvl.Pattern.get p w))
  done;
  { qubits; amps = !amps }

let qubits s = s.qubits
let dimension s = Array.length s.amps
let amplitude s i = s.amps.(i)

let apply m s =
  if Dmatrix.cols m <> Array.length s.amps then
    invalid_arg "State.apply: dimension mismatch";
  { s with amps = Dmatrix.apply m s.amps }

let equal a b = a.qubits = b.qubits && Array.for_all2 Dyadic.equal a.amps b.amps

let total_probability s =
  Prob.sum (Array.to_list (Array.map (fun a -> Prob.of_norm_sq (Dyadic.norm_sq a)) s.amps))

let is_normalized s = Prob.equal (total_probability s) Prob.one
let basis_probability s code = Prob.of_norm_sq (Dyadic.norm_sq s.amps.(code))

let one_probability s ~wire =
  if wire < 0 || wire >= s.qubits then invalid_arg "State.one_probability: wire out of range";
  let acc = ref Prob.zero in
  Array.iteri
    (fun code a ->
      if (code lsr (s.qubits - 1 - wire)) land 1 = 1 then
        acc := Prob.add !acc (Prob.of_norm_sq (Dyadic.norm_sq a)))
    s.amps;
  !acc

let distribution s = Array.init (dimension s) (basis_probability s)

let to_pattern s =
  List.find_opt
    (fun p -> equal (of_pattern p) s)
    (Mvl.Pattern.all ~qubits:s.qubits)

let product_across s ~cut =
  if cut <= 0 || cut >= s.qubits then invalid_arg "State.product_across: bad cut";
  let cols = 1 lsl (s.qubits - cut) in
  let rows = 1 lsl cut in
  let amp r c = s.amps.((r lsl (s.qubits - cut)) lor c) in
  (* rank <= 1 iff every 2x2 minor vanishes *)
  let ok = ref true in
  for r1 = 0 to rows - 2 do
    for r2 = r1 + 1 to rows - 1 do
      for c1 = 0 to cols - 2 do
        for c2 = c1 + 1 to cols - 1 do
          let minor =
            Dyadic.sub
              (Dyadic.mul (amp r1 c1) (amp r2 c2))
              (Dyadic.mul (amp r1 c2) (amp r2 c1))
          in
          if not (Dyadic.is_zero minor) then ok := false
        done
      done
    done
  done;
  !ok

let is_product s =
  let rec go cut = cut >= s.qubits || (product_across s ~cut && go (cut + 1)) in
  s.qubits <= 1 || go 1

let is_entangled s = not (is_product s)

let schmidt_rank s ~cut =
  if cut <= 0 || cut >= s.qubits then invalid_arg "State.schmidt_rank: bad cut";
  let cols = 1 lsl (s.qubits - cut) in
  let rows = 1 lsl cut in
  Dmatrix.rank
    (Dmatrix.make rows cols (fun r c -> s.amps.((r lsl (s.qubits - cut)) lor c)))

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun code a ->
      if not (Dyadic.is_zero a) then
        Format.fprintf ppf "%a |%d⟩@," Dyadic.pp a code)
    s.amps;
  Format.fprintf ppf "@]"
