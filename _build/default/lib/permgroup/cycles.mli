(** Disjoint-cycle notation, 1-based as printed in the paper and in GAP.

    [of_string ~degree "(5,17,7,21)(6,18,8,22)"] parses the paper's cycle
    products; [to_string] inverts it ([Perm.pp] prints the same format). *)

(** [to_cycles p] lists the non-trivial cycles of [p], each starting from
    its smallest point, cycles ordered by smallest point; points 0-based. *)
val to_cycles : Perm.t -> int list list

(** [of_cycles ~degree cycles] builds a permutation from 0-based cycles.
    @raise Invalid_argument on out-of-range or repeated points. *)
val of_cycles : degree:int -> int list list -> Perm.t

(** [of_string ~degree s] parses 1-based cycle notation, e.g.
    ["(3,7,4,8)"] or ["()"] for the identity.  Whitespace is ignored.
    @raise Invalid_argument on malformed input. *)
val of_string : degree:int -> string -> Perm.t

(** [to_string p] renders 1-based cycle notation; identity is ["()"]. *)
val to_string : Perm.t -> string
