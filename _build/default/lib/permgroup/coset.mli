(** Left-coset decompositions, as used by the paper's Theorem 2:
    H = ⋃_{a ∈ N} a*G with pairwise disjoint cosets, where N is the group
    of NOT-gate layers and G the circuits fixing the all-zero pattern. *)

(** [decompose ~reps ~mem g] finds the first representative [a] in [reps]
    such that [a^-1 * g] belongs to the subgroup recognized by [mem], and
    returns [Some (a, h)] with [g = a * h] (product = apply left first),
    or [None] when no representative works. *)
val decompose :
  reps:Perm.t list -> mem:(Perm.t -> bool) -> Perm.t -> (Perm.t * Perm.t) option

(** [disjoint ~reps ~mem] is true when the cosets [a * G] for [a] in [reps]
    are pairwise disjoint, i.e. [mem (a^-1 * b)] fails for distinct
    representatives [a], [b]. *)
val disjoint : reps:Perm.t list -> mem:(Perm.t -> bool) -> bool

(** [covers ~reps ~subgroup_size ~group_size] is the counting check that
    the cosets partition the group: [|reps| * subgroup_size = group_size]
    (valid only together with {!disjoint}). *)
val covers : reps:Perm.t list -> subgroup_size:int -> group_size:int -> bool
