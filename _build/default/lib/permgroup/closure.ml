type t = {
  degree : int;
  table : (string, Perm.t * int) Hashtbl.t; (* key -> (element, BFS level) *)
}

let generate ?(limit = 10_000_000) gens =
  let degree =
    match gens with
    | [] -> invalid_arg "Closure.generate: empty generating set"
    | g :: rest ->
        let d = Perm.degree g in
        if List.exists (fun h -> Perm.degree h <> d) rest then
          invalid_arg "Closure.generate: degree mismatch";
        d
  in
  let table = Hashtbl.create 1024 in
  let id = Perm.identity degree in
  Hashtbl.add table (Perm.key id) (id, 0);
  let frontier = ref [ id ] and level = ref 0 in
  while !frontier <> [] do
    incr level;
    let next = ref [] in
    List.iter
      (fun p ->
        List.iter
          (fun g ->
            let q = Perm.mul p g in
            let k = Perm.key q in
            if not (Hashtbl.mem table k) then begin
              if Hashtbl.length table >= limit then
                invalid_arg "Closure.generate: group exceeds size limit";
              Hashtbl.add table k (q, !level);
              next := q :: !next
            end)
          gens)
      !frontier;
    frontier := !next
  done;
  { degree; table }

let size g = Hashtbl.length g.table
let degree g = g.degree
let mem g p = Perm.degree p = g.degree && Hashtbl.mem g.table (Perm.key p)
let elements g = Hashtbl.fold (fun _ (p, _) acc -> p :: acc) g.table []
let iter f g = Hashtbl.iter (fun _ (p, _) -> f p) g.table
let fold f g init = Hashtbl.fold (fun _ (p, _) acc -> f p acc) g.table init
let elements_by_length g = Hashtbl.fold (fun _ pl acc -> pl :: acc) g.table []

let is_subgroup_of sub sup =
  sub.degree = sup.degree
  && Hashtbl.fold (fun k _ acc -> acc && Hashtbl.mem sup.table k) sub.table true
