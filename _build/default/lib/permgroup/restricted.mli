(** GAP's [RestrictedPerm], the keystone of the paper's FMCF algorithm.

    Given a permutation [b] of a large domain and a subset [s] of points,
    if [b] maps [s] onto itself then the restriction of [b] to [s] is a
    permutation of [s]; re-indexing [s] by its sorted position gives a
    permutation of [{0, ..., |s|-1}]. *)

(** [restrict b s] is [Some] of the re-indexed restriction when the sorted
    point list [s] satisfies [b s = s] (as sets), [None] otherwise.
    @raise Invalid_argument if [s] is not sorted strictly increasing or
    mentions points outside the domain of [b]. *)
val restrict : Perm.t -> int list -> Perm.t option

(** [restrict_prefix b k] is the common special case [restrict b [0..k-1]]:
    the paper restricts to the first 8 points (the binary patterns).
    Implemented without allocation of the subset. *)
val restrict_prefix : Perm.t -> int -> Perm.t option

(** [preserves_prefix b k] is true iff [b] maps [{0..k-1}] onto itself. *)
val preserves_prefix : Perm.t -> int -> bool
