lib/permgroup/perm.mli: Format
