lib/permgroup/schreier.ml: Hashtbl List Perm Queue
