lib/permgroup/coset.mli: Perm
