lib/permgroup/schreier.mli: Perm
