lib/permgroup/closure.mli: Perm
