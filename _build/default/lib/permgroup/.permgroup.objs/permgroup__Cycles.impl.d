lib/permgroup/cycles.ml: Array Format List Perm String
