lib/permgroup/restricted.ml: Array Hashtbl List Perm
