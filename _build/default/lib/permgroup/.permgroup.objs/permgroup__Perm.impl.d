lib/permgroup/perm.ml: Array Char Format Hashtbl Int List Stdlib String
