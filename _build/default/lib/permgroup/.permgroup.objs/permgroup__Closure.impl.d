lib/permgroup/closure.ml: Hashtbl List Perm
