lib/permgroup/cycles.mli: Perm
