lib/permgroup/coset.ml: List Perm
