lib/permgroup/restricted.mli: Perm
