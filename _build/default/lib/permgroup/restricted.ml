let restrict b s =
  let n = Perm.degree b in
  let rec check_sorted = function
    | [] | [ _ ] -> ()
    | x :: (y :: _ as rest) ->
        if x >= y then invalid_arg "Restricted.restrict: subset not sorted";
        check_sorted rest
  in
  check_sorted s;
  List.iter
    (fun x -> if x < 0 || x >= n then invalid_arg "Restricted.restrict: point out of domain")
    s;
  let points = Array.of_list s in
  let k = Array.length points in
  (* position of a point within the sorted subset, or -1 *)
  let pos = Hashtbl.create (2 * k) in
  Array.iteri (fun i x -> Hashtbl.add pos x i) points;
  let img = Array.make k 0 in
  let ok = ref true in
  Array.iteri
    (fun i x ->
      match Hashtbl.find_opt pos (Perm.apply b x) with
      | Some j -> img.(i) <- j
      | None -> ok := false)
    points;
  if !ok then Some (Perm.unsafe_of_array img) else None

let preserves_prefix b k =
  let rec go i = i >= k || (Perm.apply b i < k && go (i + 1)) in
  go 0

let restrict_prefix b k =
  if preserves_prefix b k then Some (Perm.unsafe_of_array (Array.init k (Perm.apply b)))
  else None
