let decompose ~reps ~mem g =
  let rec go = function
    | [] -> None
    | a :: rest ->
        let h = Perm.mul (Perm.inverse a) g in
        if mem h then Some (a, h) else go rest
  in
  go reps

let disjoint ~reps ~mem =
  let rec go = function
    | [] -> true
    | a :: rest ->
        List.for_all (fun b -> not (mem (Perm.mul (Perm.inverse a) b))) rest
        && go rest
  in
  go reps

let covers ~reps ~subgroup_size ~group_size =
  List.length reps * subgroup_size = group_size
