(** Permutations of [{0, ..., degree-1}] as image arrays.

    The product convention follows the paper (and GAP): [mul a b] means
    {e apply [a] first, then [b]}, so [(mul a b) x = b (a x)].

    Values are immutable once built; the constructors validate that the
    image array is a bijection.  [key] gives a compact string usable as a
    hash-table key — the breadth-first searches in [synthesis] store
    millions of permutations, so keys are byte strings rather than boxed
    arrays. *)

type t

(** {1 Construction} *)

(** [of_array img] takes ownership of a validated copy of [img].
    @raise Invalid_argument if [img] is not a permutation of [0..len-1]. *)
val of_array : int array -> t

(** [unsafe_of_array img] skips validation and does not copy; for internal
    hot paths where [img] is constructed correct and never aliased. *)
val unsafe_of_array : int array -> t

val identity : int -> t

(** [transposition degree a b] swaps points [a] and [b]. *)
val transposition : int -> int -> int -> t

(** [of_mapping degree pairs] builds the permutation sending [x] to [y]
    for each [(x, y)] in [pairs], fixing unmentioned points.
    @raise Invalid_argument if the result is not a bijection. *)
val of_mapping : int -> (int * int) list -> t

(** {1 Accessors} *)

val degree : t -> int

(** [apply p x] is the image of point [x]. *)
val apply : t -> int -> int

(** [to_array p] is a fresh copy of the image array. *)
val to_array : t -> int array

(** {1 Algebra} *)

(** [mul a b] applies [a] then [b].
    @raise Invalid_argument if degrees differ. *)
val mul : t -> t -> t

val inverse : t -> t

(** [pow p k] is the [k]-th power; [k] may be negative. *)
val pow : t -> int -> t

(** [conjugate p q] is [q^-1 * p * q]. *)
val conjugate : t -> t -> t

(** {1 Queries} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_identity : t -> bool

(** [order p] is the least positive [k] with [pow p k] the identity. *)
val order : t -> int

(** [support p] lists the moved points in increasing order. *)
val support : t -> int list

(** [fixes p x] is true when [apply p x = x]. *)
val fixes : t -> int -> bool

(** [image p s] is the image of the point set [s], sorted. *)
val image : t -> int list -> int list

(** [preserves p s] is true when [image p s] equals [s] as a set
    ([s] must be sorted). *)
val preserves : t -> int list -> bool

(** {1 Hashing support} *)

(** [key p] is a compact byte-string key; equal permutations have equal
    keys.  Only valid for degrees below 256. *)
val key : t -> string

val hash : t -> int

(** {1 Extension and restriction} *)

(** [pad p degree] reinterprets [p] on a larger degree, fixing new points.
    @raise Invalid_argument if [degree < degree p]. *)
val pad : t -> int -> t

val pp : Format.formatter -> t -> unit
