let to_cycles p =
  let n = Perm.degree p in
  let seen = Array.make n false in
  let cycles = ref [] in
  for i = 0 to n - 1 do
    if (not seen.(i)) && Perm.apply p i <> i then begin
      let cyc = ref [] and j = ref i in
      while not seen.(!j) do
        seen.(!j) <- true;
        cyc := !j :: !cyc;
        j := Perm.apply p !j
      done;
      cycles := List.rev !cyc :: !cycles
    end
  done;
  List.rev !cycles

let of_cycles ~degree cycles =
  let img = Array.init degree (fun i -> i) in
  let seen = Array.make degree false in
  let mark x =
    if x < 0 || x >= degree then invalid_arg "Cycles.of_cycles: point out of range";
    if seen.(x) then invalid_arg "Cycles.of_cycles: repeated point";
    seen.(x) <- true
  in
  let set_cycle cyc =
    match cyc with
    | [] | [ _ ] -> List.iter mark cyc
    | first :: _ ->
        List.iter mark cyc;
        let rec link = function
          | [ last ] -> img.(last) <- first
          | x :: (y :: _ as rest) ->
              img.(x) <- y;
              link rest
          | [] -> ()
        in
        link cyc
  in
  List.iter set_cycle cycles;
  Perm.of_array img

let of_string ~degree s =
  let n = String.length s in
  let pos = ref 0 in
  let skip_ws () = while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n') do incr pos done in
  let fail msg = invalid_arg ("Cycles.of_string: " ^ msg) in
  let read_int () =
    skip_ws ();
    let start = !pos in
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
    if !pos = start then fail "expected integer";
    int_of_string (String.sub s start (!pos - start))
  in
  let cycles = ref [] in
  skip_ws ();
  while !pos < n do
    if s.[!pos] <> '(' then fail "expected '('";
    incr pos;
    skip_ws ();
    if !pos < n && s.[!pos] = ')' then incr pos (* "()" : identity factor *)
    else begin
      let cyc = ref [ read_int () ] in
      skip_ws ();
      while !pos < n && (s.[!pos] = ',' || s.[!pos] = ' ') do
        incr pos;
        cyc := read_int () :: !cyc;
        skip_ws ()
      done;
      if !pos >= n || s.[!pos] <> ')' then fail "expected ')'";
      incr pos;
      cycles := List.rev_map (fun x -> x - 1) !cyc :: !cycles
    end;
    skip_ws ()
  done;
  of_cycles ~degree (List.rev !cycles)

let to_string p = Format.asprintf "%a" Perm.pp p
