type t = int array

let validate img =
  let n = Array.length img in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then
        invalid_arg "Perm.of_array: not a permutation";
      seen.(x) <- true)
    img

let of_array img =
  validate img;
  Array.copy img

let unsafe_of_array img = img
let identity n = Array.init n (fun i -> i)

let transposition n a b =
  if a < 0 || a >= n || b < 0 || b >= n then
    invalid_arg "Perm.transposition: point out of range";
  let p = Array.init n (fun i -> i) in
  p.(a) <- b;
  p.(b) <- a;
  p

let of_mapping n pairs =
  let p = Array.init n (fun i -> i) in
  List.iter
    (fun (x, y) ->
      if x < 0 || x >= n || y < 0 || y >= n then
        invalid_arg "Perm.of_mapping: point out of range";
      p.(x) <- y)
    pairs;
  validate p;
  p

let degree = Array.length
let apply p x = p.(x)
let to_array = Array.copy

let mul a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Perm.mul: degree mismatch";
  Array.init n (fun i -> b.(a.(i)))

let inverse p =
  let n = Array.length p in
  let q = Array.make n 0 in
  for i = 0 to n - 1 do
    q.(p.(i)) <- i
  done;
  q

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let is_identity p =
  let rec go i = i >= Array.length p || (p.(i) = i && go (i + 1)) in
  go 0

let rec pow p k =
  if k < 0 then pow (inverse p) (-k)
  else if k = 0 then identity (degree p)
  else
    let h = pow p (k / 2) in
    let h2 = mul h h in
    if k land 1 = 1 then mul h2 p else h2

let conjugate p q = mul (mul (inverse q) p) q

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let order p =
  (* lcm of cycle lengths *)
  let n = Array.length p in
  let seen = Array.make n false in
  let result = ref 1 in
  for i = 0 to n - 1 do
    if not seen.(i) then begin
      let len = ref 0 and j = ref i in
      while not seen.(!j) do
        seen.(!j) <- true;
        incr len;
        j := p.(!j)
      done;
      result := lcm !result !len
    end
  done;
  !result

let support p =
  let acc = ref [] in
  for i = Array.length p - 1 downto 0 do
    if p.(i) <> i then acc := i :: !acc
  done;
  !acc

let fixes p x = p.(x) = x
let image p s = List.sort Int.compare (List.map (fun x -> p.(x)) s)
let preserves p s = image p s = s

let key p = String.init (Array.length p) (fun i -> Char.chr p.(i))
let hash p = Hashtbl.hash (key p)

let pad p n =
  let d = degree p in
  if n < d then invalid_arg "Perm.pad: smaller degree";
  Array.init n (fun i -> if i < d then p.(i) else i)

let pp ppf p =
  (* Disjoint-cycle notation, 1-based as in the paper; identity prints "()" *)
  let n = Array.length p in
  let seen = Array.make n false in
  let printed = ref false in
  for i = 0 to n - 1 do
    if (not seen.(i)) && p.(i) <> i then begin
      printed := true;
      Format.fprintf ppf "(";
      let j = ref i and first = ref true in
      while not seen.(!j) do
        seen.(!j) <- true;
        if not !first then Format.fprintf ppf ",";
        first := false;
        Format.fprintf ppf "%d" (!j + 1);
        j := p.(!j)
      done;
      Format.fprintf ppf ")"
    end
  done;
  if not !printed then Format.fprintf ppf "()"
