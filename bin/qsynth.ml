(* qsynth: command-line front end for the exact quantum-circuit synthesis
   library (Yang/Hung/Song/Perkowski, DATE 2005 reproduction). *)

open Cmdliner
open Synthesis

let setup_logs verbosity =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level
    (match verbosity with
    | 0 -> Some Logs.Warning
    | 1 -> Some Logs.Info
    | _ -> Some Logs.Debug)

let verbose_arg =
  let doc =
    "Increase log verbosity: -v prints per-level progress (info), -vv full \
     search traces (debug)."
  in
  Term.(const List.length $ Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc))

(* telemetry plumbing shared by the search-heavy subcommands *)

let metrics_arg =
  let doc =
    "Enable telemetry and write a JSON snapshot (counters, gauges, \
     histograms, per-level series, span tree) to $(docv) on exit.  The \
     schema is documented in doc/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Enable telemetry and print the live span tree to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

(* [setup_telemetry verbosity metrics trace] configures logs and the
   telemetry switch; returns the snapshot writer to run after the work. *)
let setup_telemetry verbosity metrics trace =
  setup_logs verbosity;
  if metrics <> None || trace then Telemetry.set_enabled true;
  Telemetry.set_trace trace;
  fun () ->
    match metrics with
    | None -> ()
    | Some path -> (
        try
          Telemetry.write_snapshot path;
          Format.eprintf "telemetry snapshot written to %s@." path
        with Sys_error msg ->
          Format.eprintf "error: cannot write telemetry snapshot: %s@." msg)

let telemetry_term = Term.(const setup_telemetry $ verbose_arg $ metrics_arg $ trace_arg)

let make_library qubits = Library.make (Mvl.Encoding.make ~qubits)

let qubits_arg =
  let doc = "Number of qubits." in
  Arg.(value & opt int 3 & info [ "q"; "qubits" ] ~docv:"N" ~doc)

let depth_arg =
  let doc = "Search depth bound (the paper's cb)." in
  Arg.(value & opt int 7 & info [ "d"; "depth" ] ~docv:"K" ~doc)

let jobs_arg =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg "JOBS must be at least 1")
      | None -> Error (`Msg (Printf.sprintf "invalid JOBS value %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let doc =
    "Number of worker domains for the breadth-first search (default 1).  \
     Every value produces identical results; values above 1 parallelize \
     each level across domains.  The effective value appears as the \
     $(b,search.jobs) gauge in the $(b,--metrics) snapshot."
  in
  Arg.(value & opt pos_int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

(* census *)

let census_cmd =
  let run finish_telemetry qubits depth jobs paper_variant save =
    let library = make_library qubits in
    let t0 = Unix.gettimeofday () in
    let census = Fmcf.run ~max_depth:depth ~jobs library in
    let elapsed = Unix.gettimeofday () -. t0 in
    (match save with
    | Some path ->
        Census_io.save census path;
        Format.printf "saved census to %s@." path
    | None -> ());
    let counts = if paper_variant then Fmcf.paper_counts census else Fmcf.counts census in
    Format.printf "Table 2: number of circuits with cost k (%d qubits, depth %d)@."
      qubits depth;
    Format.printf "Cost k  :";
    List.iter (fun (k, _) -> Format.printf " %6d" k) counts;
    Format.printf "@.|G[k]|  :";
    List.iter (fun (_, n) -> Format.printf " %6d" n) counts;
    Format.printf "@.|S%d[k]| :" (1 lsl qubits);
    List.iter (fun (_, n) -> Format.printf " %6d" (n * (1 lsl qubits))) counts;
    Format.printf "@.total functions found: %d; search states: %d; %.2fs@."
      (Fmcf.total_found census)
      (Search.size (Fmcf.search census))
      elapsed;
    if Telemetry.enabled () then Telemetry.log_summary ();
    finish_telemetry ()
  in
  let paper_flag =
    Arg.(value & flag & info [ "paper-variant" ]
           ~doc:"Report the counts exactly as printed in the paper's Table 2 \
                 (reproducing its two counting artifacts at k = 2, 3).")
  in
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Save the census (cost, function, witness cascade) as TSV.")
  in
  Cmd.v (Cmd.info "census" ~doc:"Reproduce Table 2: |G[k]| for k = 0..depth.")
    Term.(
      const run $ telemetry_term $ qubits_arg $ depth_arg $ jobs_arg $ paper_flag
      $ save_arg)

(* synth *)

let synth_cmd =
  let run finish_telemetry qubits depth jobs all spec =
    let library = make_library qubits in
    let target = Reversible.Spec.parse ~bits:qubits spec in
    Format.printf "target: %a@." Reversible.Revfun.pp target;
    let t0 = Unix.gettimeofday () in
    if all then begin
      let results = Mce.all_realizations ~max_depth:depth ~jobs library target in
      (match results with
      | [] -> Format.printf "no realization within depth %d@." depth
      | { Mce.cost; _ } :: _ ->
          Format.printf "%d minimal realization(s) of cost %d (%.3fs):@."
            (List.length results) cost
            (Unix.gettimeofday () -. t0);
          List.iter
            (fun r ->
              Format.printf "  %s%a  [verified: %b]@."
                (if r.Mce.not_mask = 0 then ""
                 else Printf.sprintf "NOT(mask=%d) * " r.Mce.not_mask)
                Cascade.pp r.Mce.cascade
                (Verify.result_valid library r))
            results)
    end
    else
      (match Mce.express ~max_depth:depth ~jobs library target with
      | None -> Format.printf "no realization within depth %d@." depth
      | Some r ->
          Format.printf "cost %d (%.3fs): %s%a  [verified: %b]@." r.Mce.cost
            (Unix.gettimeofday () -. t0)
            (if r.Mce.not_mask = 0 then ""
             else Printf.sprintf "NOT(mask=%d) * " r.Mce.not_mask)
            Cascade.pp r.Mce.cascade
            (Verify.result_valid library r));
    finish_telemetry ()
  in
  let all_flag =
    Arg.(value & flag & info [ "a"; "all" ] ~doc:"Enumerate all minimal realizations.")
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Named circuit (toffoli, peres, g2, g3, g4, fredkin), 1-based \
                 cycle notation like '(7,8)', or a truth-table output column \
                 like '0,1,2,3,4,5,7,6'.")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize a minimal-cost quantum cascade for a reversible function \
             (the paper's MCE algorithm).")
    Term.(
      const run $ telemetry_term $ qubits_arg $ depth_arg $ jobs_arg $ all_flag
      $ spec_arg)

(* table1 *)

let table1_cmd =
  let run () =
    let gate = Gate.make Gate.Controlled_v ~target:1 ~control:0 in
    let rows =
      Mvl.Truth_table.labeled_rows ~order:Mvl.Truth_table.table1_order (Gate.apply gate)
    in
    Format.printf "Table 1: truth table of the 2-qubit controlled-V gate@.";
    Mvl.Truth_table.pp_table ~wires:[ "A"; "B" ] Format.std_formatter rows;
    (* The paper prints the permutation over Table 1's own row order. *)
    let img = Array.make (List.length rows) 0 in
    List.iter (fun (li, _, _, lo) -> img.(li - 1) <- lo - 1) rows;
    Format.printf "permutation representation: %a@." Permgroup.Perm.pp
      (Permgroup.Perm.of_array img)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1 (2-qubit controlled-V truth table).")
    Term.(const run $ const ())

(* universal *)

let universal_cmd =
  let run finish_telemetry jobs =
    let library = make_library 3 in
    let census = Fmcf.run ~max_depth:4 ~jobs library in
    let linear, family = Universality.split_g4 census in
    Format.printf "G[4]: %d circuits = %d Feynman-realizable + %d Peres-family@."
      (List.length linear + List.length family)
      (List.length linear) (List.length family);
    let universal =
      List.filter (fun (m : Fmcf.member) -> Universality.is_universal m.Fmcf.func) family
    in
    Format.printf "universal Peres-family circuits: %d@." (List.length universal);
    let orbits =
      Universality.wire_orbits (List.map (fun (m : Fmcf.member) -> m.Fmcf.func) family)
    in
    Format.printf "wire-relabeling orbits: %s@."
      (String.concat " + "
         (List.map (fun o -> string_of_int (List.length o)) orbits));
    List.iteri
      (fun i orbit ->
        Format.printf "  orbit %d representative: %a@." (i + 1) Reversible.Revfun.pp
          (List.hd orbit))
      orbits;
    let g_size, h_size = Universality.theorem2_check ~bits:3 in
    Format.printf "|G| = %d, |S8| = %d (Theorem 2 coset checks passed)@." g_size h_size;
    finish_telemetry ()
  in
  Cmd.v
    (Cmd.info "universal"
       ~doc:"Reproduce the Section 5 group-theory results: the 24 universal \
             cost-4 circuits, their orbits, |G| = 5040 and Theorem 2.")
    Term.(const run $ telemetry_term $ jobs_arg)

(* simulate *)

let simulate_cmd =
  let run qubits cascade_str input_str =
    let library = make_library qubits in
    let cascade = Cascade.of_string ~qubits cascade_str in
    Format.printf "cascade: %a (cost %d, reasonable: %b)@." Cascade.pp cascade
      (Cascade.cost cascade)
      (Cascade.is_reasonable library cascade);
    let circuit = Automata.Prob_circuit.of_cascade library cascade in
    let inputs =
      match input_str with
      | Some s -> [ int_of_string s ]
      | None -> List.init (1 lsl qubits) Fun.id
    in
    List.iter
      (fun input ->
        let pattern = Automata.Prob_circuit.output_pattern circuit ~input in
        Format.printf "input %d -> pattern %a" input Mvl.Pattern.pp pattern;
        if Mvl.Pattern.is_binary pattern then Format.printf " (deterministic)@."
        else begin
          Format.printf " ; measurement:";
          List.iter
            (fun (code, p) -> Format.printf " %d:%a" code Qsim.Prob.pp p)
            (Automata.Measurement.support pattern);
          Format.printf "@."
        end)
      inputs
  in
  let cascade_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CASCADE"
           ~doc:"Gate cascade, e.g. 'VCB*FBA*VCA*V+CB'.")
  in
  let input_arg =
    Arg.(value & opt (some string) None & info [ "i"; "input" ] ~docv:"CODE"
           ~doc:"Binary input code (default: all).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a cascade on binary inputs; print quaternary outputs and exact \
             measurement distributions.")
    Term.(const run $ qubits_arg $ cascade_arg $ input_arg)

(* classical *)

let classical_cmd =
  let run spec_opt =
    let libraries =
      [
        Reversible.Classical_synth.ncp_linear;
        Reversible.Classical_synth.ncp_toffoli;
        Reversible.Classical_synth.ncp_peres;
      ]
    in
    match spec_opt with
    | None ->
        List.iter
          (fun library ->
            let result = Reversible.Classical_synth.census ~bits:3 library in
            Format.printf "%a@.@." Reversible.Classical_synth.pp_result result)
          libraries
    | Some spec ->
        let target = Reversible.Spec.parse ~bits:3 spec in
        List.iter
          (fun library ->
            match Reversible.Classical_synth.synthesize ~bits:3 library target with
            | Some (gates, count) ->
                Format.printf "%-18s %d gates: %s@."
                  library.Reversible.Classical_synth.label count
                  (String.concat "*"
                     (List.map
                        (fun g -> g.Reversible.Classical_synth.name)
                        gates))
            | None ->
                Format.printf "%-18s unreachable@."
                  library.Reversible.Classical_synth.label)
          libraries
  in
  let spec_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Optional circuit to factor into classical library gates; \
                 without it, census all three libraries.")
  in
  Cmd.v
    (Cmd.info "classical"
       ~doc:"Classical gate-library synthesis over all 40320 3-bit reversible \
             functions: the paper's Peres-vs-Toffoli library comparison.")
    Term.(const run $ spec_arg)

(* describe *)

let describe_cmd =
  let run qubits spec =
    let library = make_library qubits in
    let target = Reversible.Spec.parse ~bits:qubits spec in
    Format.printf "cycles:   %a@." Reversible.Revfun.pp target;
    Format.printf "formulas: %s@." (Reversible.Anf.describe target);
    Format.printf "linear:   %b@." (Reversible.Anf.is_linear target);
    (match Reversible.Gf2.synthesize target with
    | Some (not_mask, cnots) ->
        Format.printf "affine decomposition: NOT(mask=%d) then %d CNOT(s)@." not_mask
          (List.length cnots)
    | None -> ());
    match Mce.express library target with
    | Some r ->
        Format.printf "quantum cost: %d@.@.%s@." r.Mce.cost
          (Draw.to_ascii ~qubits ~not_mask:r.Mce.not_mask r.Mce.cascade)
    | None -> Format.printf "quantum cost: beyond the default depth bound@."
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Circuit to describe (names, cycles, formulas or output lists).")
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Everything about one reversible function: cycle form, per-output \
             formulas (ANF), linearity, minimal quantum cascade and its drawing.")
    Term.(const run $ qubits_arg $ spec_arg)

(* spectrum *)

let spectrum_cmd =
  let run finish_telemetry depth jobs probe =
    let library = make_library 3 in
    let t0 = Unix.gettimeofday () in
    let census = Fmcf.run ~max_depth:depth ~jobs library in
    Format.printf "census to depth %d: %.1fs, %d functions@." depth
      (Unix.gettimeofday () -. t0)
      (Fmcf.total_found census);
    let spectrum = Spectrum.analyze census in
    Format.printf "exact costs:";
    List.iter (fun (k, n) -> Format.printf " %d:%d" k n) spectrum.Spectrum.exact;
    Format.printf "@.beyond the census: %d elements, lower bound %d@."
      (List.length spectrum.Spectrum.bounds)
      (depth + 1);
    Format.printf "two-split upper bounds:";
    List.iter
      (fun (c, n) ->
        if c = max_int then Format.printf " unresolved:%d" n
        else Format.printf " %d:%d" c n)
      (Spectrum.upper_histogram spectrum);
    Format.printf "@.tight (exactly determined): %d of %d@."
      spectrum.Spectrum.tight
      (List.length spectrum.Spectrum.bounds);
    if probe then begin
      let t0 = Unix.gettimeofday () in
      let completion = Spectrum.complete census spectrum in
      Format.printf "frontier probes (%.1fs): |G[%d]| = %d, |G[%d]| = %d (exact)@."
        (Unix.gettimeofday () -. t0)
        (depth + 1) completion.Spectrum.probe_one (depth + 2)
        completion.Spectrum.probe_two;
      Format.printf "resolved tail:";
      List.iter
        (fun (c, n) -> Format.printf " %d:%d" c n)
        completion.Spectrum.resolved_tail;
      Format.printf "@.unresolved: %d@." completion.Spectrum.unresolved
    end;
    finish_telemetry ()
  in
  let depth_arg =
    Arg.(value & opt int 7 & info [ "d"; "depth" ] ~docv:"K" ~doc:"Census depth.")
  in
  let probe_flag =
    Arg.(value & flag & info [ "probe" ]
           ~doc:"Also probe one and two levels past the census depth (exact, \
                 memory-light, but slow: the probe re-walks the frontier without \
                 deduplication).")
  in
  Cmd.v
    (Cmd.info "spectrum"
       ~doc:"Complete the minimal-cost spectrum of all 5040 NOT-free reversible \
             functions: exact costs up to the census depth, provable bounds beyond.")
    Term.(const run $ telemetry_term $ depth_arg $ jobs_arg $ probe_flag)

(* draw *)

let draw_cmd =
  let run qubits depth spec =
    let library = make_library qubits in
    let target = Reversible.Spec.parse ~bits:qubits spec in
    match Mce.express ~max_depth:depth library target with
    | None -> Format.printf "no realization within depth %d@." depth
    | Some r ->
        Format.printf "%a  (cost %d)@.@." Reversible.Revfun.pp target r.Mce.cost;
        Format.printf "%s@."
          (Draw.to_ascii ~qubits ~not_mask:r.Mce.not_mask r.Mce.cascade)
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Circuit to synthesize and draw (same formats as synth).")
  in
  Cmd.v
    (Cmd.info "draw" ~doc:"Synthesize a circuit and render it as ASCII art.")
    Term.(const run $ qubits_arg $ depth_arg $ spec_arg)

(* weighted *)

let weighted_cmd =
  let run qubits max_cost model_name spec =
    let library = make_library qubits in
    let target = Reversible.Spec.parse ~bits:qubits spec in
    let model =
      match model_name with
      | "unit" -> Cost_model.unit
      | "v-cheap" -> Cost_model.v_cheap
      | "feynman-cheap" -> Cost_model.feynman_cheap
      | other -> failwith ("unknown cost model: " ^ other)
    in
    match Weighted.express ~max_cost library ~model target with
    | None -> Format.printf "no realization within cost %d@." max_cost
    | Some r ->
        Format.printf "model %s: cost %d, cascade %s%a  [verified: %b]@."
          (Cost_model.name model) r.Weighted.cost
          (if r.Weighted.not_mask = 0 then ""
           else Printf.sprintf "NOT(mask=%d) * " r.Weighted.not_mask)
          Cascade.pp r.Weighted.cascade
          (Verify.cascade_implements ~qubits ~not_mask:r.Weighted.not_mask
             r.Weighted.cascade target)
  in
  let model_arg =
    Arg.(value & opt string "unit" & info [ "m"; "model" ] ~docv:"MODEL"
           ~doc:"Cost model: unit, v-cheap or feynman-cheap.")
  in
  let max_cost_arg =
    Arg.(value & opt int 8 & info [ "c"; "max-cost" ] ~docv:"C"
           ~doc:"Total cost bound for the Dijkstra search.")
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Circuit to synthesize (same formats as synth).")
  in
  Cmd.v
    (Cmd.info "weighted"
       ~doc:"Minimum-cost synthesis under a non-uniform gate cost model \
             (uniform-cost search).")
    Term.(const run $ qubits_arg $ max_cost_arg $ model_arg $ spec_arg)

(* ablation *)

let ablation_cmd =
  let run depth =
    let library = make_library 3 in
    let constrained = Fmcf.run ~max_depth:depth library in
    let unconstrained = Fmcf.run ~max_depth:depth (Library.unconstrained library) in
    Format.printf "census with and without the reasonable-product constraint:@.";
    Format.printf "%-16s" "cost k";
    List.iter (fun (k, _) -> Format.printf " %6d" k) (Fmcf.counts constrained);
    Format.printf "@.%-16s" "constrained";
    List.iter (fun (_, n) -> Format.printf " %6d" n) (Fmcf.counts constrained);
    Format.printf "@.%-16s" "unconstrained";
    List.iter (fun (_, n) -> Format.printf " %6d" n) (Fmcf.counts unconstrained);
    Format.printf "@.";
    (* exhibit an unsound witness *)
    let unsound =
      List.find_map
        (fun level ->
          List.find_map
            (fun (m : Fmcf.member) ->
              let cascade = Fmcf.cascade_of_member unconstrained m in
              if Verify.cascade_implements ~qubits:3 cascade m.Fmcf.func then None
              else Some (cascade, m.Fmcf.func))
            level.Fmcf.members)
        (Fmcf.levels unconstrained)
    in
    match unsound with
    | Some (cascade, func) ->
        Format.printf
          "unsound witness: %a claims %a in the multiple-valued model but its exact \
           unitary does not implement it — this is why Definition 1 bans mixed \
           control values.@."
          Cascade.pp cascade Reversible.Revfun.pp func
    | None -> Format.printf "no unsound witness within this depth.@."
  in
  let depth_arg =
    Arg.(value & opt int 4 & info [ "d"; "depth" ] ~docv:"K" ~doc:"Census depth.")
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Ablate the reasonable-product constraint and show the search \
             becomes unsound.")
    Term.(const run $ depth_arg)

let () =
  let doc = "Exact synthesis of 3-qubit quantum circuits (DATE 2005 reproduction)." in
  let info = Cmd.info "qsynth" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            census_cmd;
            synth_cmd;
            table1_cmd;
            universal_cmd;
            simulate_cmd;
            draw_cmd;
            weighted_cmd;
            ablation_cmd;
            spectrum_cmd;
            classical_cmd;
            describe_cmd;
          ]))
