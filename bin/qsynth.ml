(* qsynth: command-line front end for the exact quantum-circuit synthesis
   library (Yang/Hung/Song/Perkowski, DATE 2005 reproduction). *)

open Cmdliner
open Synthesis

(* {1 Exit-code contract}

   0 success; 1 runtime error; 2 usage error; 124 wall-clock budget
   expired (partial census); 125 state/memory budget reached (partial
   census); 130 interrupted by SIGINT/SIGTERM after the final checkpoint
   was written.  See doc/ROBUSTNESS.md. *)

let exit_ok = 0
let exit_runtime = 1
let exit_usage = 2
let exit_timeout = 124
let exit_budget = 125
let exit_interrupt = 130

let contract_exits =
  [
    Cmd.Exit.info exit_ok ~doc:"on success.";
    Cmd.Exit.info exit_runtime
      ~doc:
        "on runtime errors: corrupt or mismatched snapshots, invalid \
         specifications, I/O failures, injected faults.";
    Cmd.Exit.info exit_usage ~doc:"on command-line parse errors.";
    Cmd.Exit.info exit_timeout
      ~doc:"when $(b,--timeout) expired; the reported census is partial.";
    Cmd.Exit.info exit_budget
      ~doc:
        "when $(b,--max-states) or $(b,--max-mem) was reached; the reported \
         census is partial.";
    Cmd.Exit.info exit_interrupt
      ~doc:
        "when interrupted (SIGINT/SIGTERM); the final checkpoint, if \
         requested, was written first.";
  ]

(* The single error boundary: every subcommand body runs under [guarded],
   which maps known exceptions to [exit_runtime] with a one-line message
   instead of a backtrace, and always runs [finish] (the telemetry
   snapshot writer). *)
let guarded ?(finish = fun () -> ()) f =
  Fun.protect ~finally:finish @@ fun () ->
  let fail fmt = Format.kasprintf (fun m -> Format.eprintf "qsynth: %s@." m; exit_runtime) fmt in
  try f () with
  | Checkpoint.Corrupt msg -> fail "snapshot is corrupt: %s" msg
  | Checkpoint.Mismatch msg -> fail "snapshot mismatch: %s" msg
  | Faultsim.Injected point -> fail "injected fault %S fired (QSYNTH_FAULT)" point
  | Invalid_argument msg | Failure msg | Sys_error msg -> fail "%s" msg
  | Unix.Unix_error (e, fn, arg) ->
      fail "%s: %s(%s)" (Unix.error_message e) fn arg

let setup_logs verbosity =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level
    (match verbosity with
    | 0 -> Some Logs.Warning
    | 1 -> Some Logs.Info
    | _ -> Some Logs.Debug)

let verbose_arg =
  let doc =
    "Increase log verbosity: -v prints per-level progress (info), -vv full \
     search traces (debug)."
  in
  Term.(const List.length $ Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc))

(* telemetry plumbing shared by the search-heavy subcommands *)

let metrics_arg =
  let doc =
    "Enable telemetry and write a JSON snapshot (counters, gauges, \
     histograms, per-level series, span tree) to $(docv) on exit.  The \
     schema is documented in doc/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Enable telemetry and print the live span tree to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

(* [setup_telemetry verbosity metrics trace] configures logs and the
   telemetry switch; returns the snapshot writer to run after the work. *)
let setup_telemetry verbosity metrics trace =
  setup_logs verbosity;
  if metrics <> None || trace then Telemetry.set_enabled true;
  Telemetry.set_trace trace;
  fun () ->
    match metrics with
    | None -> ()
    | Some path -> (
        try
          Telemetry.write_snapshot path;
          Format.eprintf "telemetry snapshot written to %s@." path
        with Sys_error msg ->
          Format.eprintf "error: cannot write telemetry snapshot: %s@." msg)

let telemetry_term = Term.(const setup_telemetry $ verbose_arg $ metrics_arg $ trace_arg)

let make_library qubits = Library.make (Mvl.Encoding.make ~qubits)

(* --library: validated by Cmdliner as an enum over the registry, so an
   unknown name is a usage error (exit 2) listing the alternatives —
   consistent with every other enumerated flag. *)
let library_arg =
  let choices = List.map (fun n -> (n, n)) Library.Registry.names in
  let doc =
    Printf.sprintf
      "Gate library (census universe): %s.  Run $(b,qsynth libraries) for \
       each library's gate count and fingerprint.  Default: %s, the paper's \
       18-gate CV/CV\xe2\x80\xa0/CNOT library."
      (Arg.doc_alts_enum choices) Library.default_name
  in
  Arg.(value & opt (enum choices) Library.default_name
       & info [ "library" ] ~docv:"NAME" ~doc)

(* {1 Cooperative cancellation}

   SIGINT/SIGTERM set an atomic flag that the search polls between
   expansion chunks; nothing happens inside the handler beyond the
   store.  [install_cancel ()] returns the polling closure. *)

let cancel_requested = Atomic.make false

let install_cancel () =
  Atomic.set cancel_requested false;
  let handler = Sys.Signal_handle (fun _ -> Atomic.set cancel_requested true) in
  Sys.set_signal Sys.sigint handler;
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  fun () -> Atomic.get cancel_requested

(* {1 Argument converters with up-front validation} *)

let pos_int ~what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (`Msg (Printf.sprintf "%s must be at least 1" what))
    | None -> Error (`Msg (Printf.sprintf "invalid %s value %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let byte_size =
  let parse s =
    let len = String.length s in
    let mult, digits =
      if len = 0 then (1, s)
      else
        match s.[len - 1] with
        | 'k' | 'K' -> (1024, String.sub s 0 (len - 1))
        | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (len - 1))
        | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (len - 1))
        | _ -> (1, s)
    in
    match int_of_string_opt digits with
    | Some n when n >= 1 -> Ok (n * mult)
    | _ ->
        Error
          (`Msg
             (Printf.sprintf
                "invalid size %S (positive integer with optional K/M/G suffix)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let pos_float ~what =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0. -> Ok f
    | Some _ -> Error (`Msg (Printf.sprintf "%s must be positive" what))
    | None -> Error (`Msg (Printf.sprintf "invalid %s value %S" what s))
  in
  Arg.conv (parse, Format.pp_print_float)

(* Checkpoint destinations are validated at parse time so a doomed run
   fails before the search starts, not hours into it. *)
let checkpoint_path =
  let parse path =
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir) then
      Error (`Msg (Printf.sprintf "checkpoint directory %s does not exist" dir))
    else if not (Sys.is_directory dir) then
      Error (`Msg (Printf.sprintf "checkpoint directory %s is not a directory" dir))
    else if Sys.file_exists path && Sys.is_directory path then
      Error (`Msg (Printf.sprintf "checkpoint path %s is a directory" path))
    else
      match Unix.access dir [ Unix.W_OK ] with
      | () -> Ok path
      | exception Unix.Unix_error _ ->
          Error (`Msg (Printf.sprintf "checkpoint directory %s is not writable" dir))
  in
  Arg.conv (parse, Format.pp_print_string)

let snapshot_path =
  let parse path =
    if not (Sys.file_exists path) then
      Error (`Msg (Printf.sprintf "snapshot %s does not exist" path))
    else if Sys.is_directory path then
      Error (`Msg (Printf.sprintf "snapshot path %s is a directory" path))
    else Ok path
  in
  Arg.conv (parse, Format.pp_print_string)

let qubits_arg =
  let doc = "Number of qubits." in
  Arg.(value & opt int 3 & info [ "q"; "qubits" ] ~docv:"N" ~doc)

let depth_arg =
  let doc = "Search depth bound (the paper's cb)." in
  Arg.(value & opt int 7 & info [ "d"; "depth" ] ~docv:"K" ~doc)

let jobs_arg =
  let doc =
    "Number of worker domains for the breadth-first search (default 1).  \
     Every value produces identical results; values above 1 parallelize \
     each level across domains.  The effective value appears as the \
     $(b,search.jobs) gauge in the $(b,--metrics) snapshot."
  in
  Arg.(value & opt (pos_int ~what:"JOBS") 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

(* census *)

(* [--stats]: the per-depth symmetry-quotient analysis.  In quotient mode
   the arena itself holds the orbit counts (and the search.quotient.*
   telemetry the ISSUE names the reduction after); in raw mode the
   analysis canonicalizes the stored arena post hoc, so the two modes
   print mutually consistent tables. *)
let print_quotient_stats census =
  let search = Fmcf.search census in
  let reached = Search.depth search in
  let library = Search.library search in
  match Search.symmetry search with
  | Some sym ->
      Format.printf
        "Symmetry quotient: group order %d (wire relabelings), x%d NOT cosets \
         at the function level@."
        (Symmetry.order sym) (Symmetry.not_cosets sym);
      Format.printf "  depth    orbits    images  img/orbit@.";
      let tot_orbits = ref 0 and tot_images = ref 0 in
      for d = 0 to reached do
        let hs = Search.handles_at_depth search d in
        let orbits = Array.length hs in
        let images =
          Array.fold_left
            (fun acc h ->
              acc
              + List.length
                  (Symmetry.orbit_images sym (Search.key_of_handle search h)))
            0 hs
        in
        tot_orbits := !tot_orbits + orbits;
        tot_images := !tot_images + images;
        Format.printf "  %5d %9d %9d %10.2f@." d orbits images
          (float_of_int images /. float_of_int (max 1 orbits))
      done;
      Format.printf "  total %9d %9d %10.2f@." !tot_orbits !tot_images
        (float_of_int !tot_images /. float_of_int (max 1 !tot_orbits));
      (match Search.quotient_collapsed search with
      | Some (news, hits) when news + hits > 0 ->
          Format.printf
            "  canonicalization: %d expansions collapsed onto %d stored \
             representatives@."
            (hits + news) news
      | _ -> (* resumed engines only tally levels run after the resume *) ())
  | None ->
      (* Raw arena: canonicalize each state's binary image after the fact. *)
      let sym = Symmetry.create library in
      Format.printf
        "Symmetry analysis of the raw arena (group order %d; run with \
         --quotient to store one representative per orbit):@."
        (Symmetry.order sym);
      Format.printf "  depth    states    images    orbits  reduction@.";
      let tot_s = ref 0 and tot_i = ref 0 and tot_o = ref 0 in
      (* Images and orbits are attributed to the first depth they appear
         at (a state at depth d can share its binary image with a
         shallower state), so this table matches the quotient-mode one:
         its per-depth orbit column is what [--quotient] would store. *)
      let images = Hashtbl.create 4096 and orbits = Hashtbl.create 4096 in
      for d = 0 to reached do
        let hs = Search.handles_at_depth search d in
        let ni = ref 0 and no = ref 0 in
        Array.iter
          (fun h ->
            let img = Search.binary_image_of_handle search h in
            if not (Hashtbl.mem images img) then begin
              Hashtbl.add images img ();
              incr ni;
              let c, _ = Symmetry.canon sym img in
              if not (Hashtbl.mem orbits c) then begin
                Hashtbl.add orbits c ();
                incr no
              end
            end)
          hs;
        tot_s := !tot_s + Array.length hs;
        tot_i := !tot_i + !ni;
        tot_o := !tot_o + !no;
        Format.printf "  %5d %9d %9d %9d %9.1fx@." d (Array.length hs) !ni !no
          (float_of_int (Array.length hs) /. float_of_int (max 1 !no))
      done;
      Format.printf "  total %9d %9d %9d %9.1fx@." !tot_s !tot_i !tot_o
        (float_of_int !tot_s /. float_of_int (max 1 !tot_o))

let census_cmd =
  let run finish_telemetry qubits depth jobs library_name paper_variant quotient
      stats save emit_index complete checkpoint every resume max_states max_mem
      timeout workers worker_cmd attach =
    (* An async checkpoint write may be in flight when an exception
       escapes; let it finish (best effort) so the file keeps the last
       boundary — the primary error is what gets reported. *)
    let finish () =
      (try Checkpoint.drain () with _ -> ());
      finish_telemetry ()
    in
    guarded ~finish @@ fun () ->
    let library = Library.of_name ~qubits library_name in
    if paper_variant && not (Library.coset_reduction library) then
      failwith
        (Printf.sprintf
           "--paper-variant reproduces the paper's Table 2 and only applies \
            to its own library (%s); library %s counts a different universe"
           Library.default_name library_name);
    if paper_variant && quotient then
      failwith
        "--paper-variant cannot be combined with --quotient: the paper's \
         printed counts depend on duplicate candidates within a level, which \
         a one-representative-per-orbit arena never re-materializes (the \
         exact counts, |S8[k]| and all witnesses are identical in both modes)";
    let last_saved = ref (-1) in
    let resume_search =
      match resume with
      | None -> (
          match checkpoint with
          | Some path when not (Sys.file_exists path) ->
              (* Seed the checkpoint at level 0 before searching, so a
                 crash at any point of the run leaves a resumable file. *)
              let symmetry =
                if quotient then Some (Symmetry.create library) else None
              in
              let s = Search.create ~jobs ?symmetry library in
              Checkpoint.save s path;
              last_saved := 0;
              Some s
          | Some _ | None -> None)
      | Some path ->
          let h = Checkpoint.peek path in
          if h.Checkpoint.depth > depth then
            failwith
              (Printf.sprintf
                 "snapshot %s is already at level %d, beyond --depth %d; pass a \
                  deeper --depth to continue it"
                 path h.Checkpoint.depth depth);
          (* The snapshot's own mode wins: a v2 file resumes quotiented,
             a v1 file resumes raw, whatever --quotient says. *)
          (match (h.Checkpoint.symmetry, quotient) with
          | None, true ->
              Format.eprintf
                "warning: %s is a raw (v1) snapshot; resuming unquotiented@." path
          | Some _, false ->
              Format.eprintf
                "warning: %s is a quotient (v2) snapshot; resuming quotiented@."
                path
          | _ -> ());
          Some (Checkpoint.load ~jobs library path)
    in
    let should_stop = install_cancel () in
    let save_checkpoint search =
      match checkpoint with
      | Some path when Search.depth search <> !last_saved ->
          Checkpoint.save search path;
          last_saved := Search.depth search
      | Some _ | None ->
          (* Nothing new to write, but the last async write must land
             before we report success. *)
          Checkpoint.drain ()
    in
    let on_level search ~cost =
      match checkpoint with
      | Some path when cost mod every = 0 ->
          Checkpoint.save_async search path;
          last_saved := cost
      | Some _ | None -> ()
    in
    let endpoints =
      List.map (fun a -> Distrib.Attach a) attach
      @ List.init workers (fun _ ->
            match worker_cmd with
            | Some cmd -> Distrib.Spawn_cmd cmd
            | None -> Distrib.Spawn_self)
    in
    if endpoints <> [] && jobs > 1 then
      Format.eprintf
        "warning: --jobs is ignored in distributed mode (--workers/--attach); \
         the coordinator merges deltas sequentially@.";
    let t0 = Unix.gettimeofday () in
    let census, reason, dstats =
      match endpoints with
      | [] ->
          let census, reason =
            Fmcf.run_guarded ~max_depth:depth ~jobs ~quotient
              ?resume:resume_search ?max_states ?max_mem ?timeout ~should_stop
              ~on_level library
          in
          (census, reason, None)
      | _ :: _ ->
          let census, reason, dstats =
            Distrib.census ~max_depth:depth ~quotient ?resume:resume_search
              ?max_states ?max_mem ?timeout ~should_stop ~on_level
              ~workers:endpoints library
          in
          (census, reason, Some dstats)
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let reached = Search.depth (Fmcf.search census) in
    (* final checkpoint at the boundary we stopped on, whatever the
       reason — interrupted runs keep their progress *)
    save_checkpoint (Fmcf.search census);
    let note =
      match reason with
      | Fmcf.Completed -> None
      | r ->
          Some
            (Printf.sprintf
               "PARTIAL census: %s at level %d of %d; deeper levels were not \
                searched"
               (Fmcf.describe_stop r) reached depth)
    in
    (match save with
    | Some path ->
        Census_io.save ?note census path;
        Format.printf "saved census to %s@." path
    | None -> ());
    (* --complete: extend the finished census to total coverage with the
       Theorem-2 sweep, then print the coverage proof.  A partial census
       (early stop) cannot anchor the sweep's lower bounds, so it falls
       back to a plain partial index with a warning. *)
    let sweep_cancelled = ref false in
    let build_index () =
      if complete && not (Library.coset_reduction library) then begin
        (* No NOT-coset factor to enumerate: the Theorem-2 sweep does not
           apply.  A full-group census that reached the library's diameter
           already covers the whole universe, so [build] marks the index
           complete by itself. *)
        let index = Census_index.build census in
        if Census_index.is_complete index then
          Format.printf
            "complete index: %d functions = all of S%d, max cost %d@."
            (Census_index.size index) (1 lsl qubits)
            (Census_index.depth index)
        else
          Format.eprintf
            "warning: library %s has no coset sweep; the index covers %d of \
             the universe's functions — run the census to the library's full \
             diameter for a complete index@."
            (Library.name library)
            (Census_index.size index);
        Some index
      end
      else if complete && reason = Fmcf.Completed then begin
        match Census_index.build_complete ~jobs ~should_stop census with
        | Some (index, swept) ->
            let hist = Census_index.histogram index in
            Format.printf
              "complete index: %d zero-fixing functions (%d from the census, %d \
               swept), coverage %d = %d x 2^%d members of S%d, max cost %d@."
              (Census_index.size index)
              (Census_index.size index - swept)
              swept
              (Census_index.coverage index)
              (Census_index.size index) qubits (1 lsl qubits)
              (Census_index.depth index);
            Format.printf "spectrum |G[k]| :";
            Array.iter (fun n -> Format.printf " %6d" n) hist;
            Format.printf "@.";
            Some index
        | None ->
            sweep_cancelled := true;
            Format.eprintf "complete sweep interrupted; no index emitted@.";
            None
      end
      else begin
        if complete then
          Format.eprintf
            "warning: census stopped early (%s); emitting a partial index \
             instead of a complete one@."
            (Fmcf.describe_stop reason);
        Some (Census_index.build census)
      end
    in
    (match emit_index with
    | Some path -> (
        match build_index () with
        | Some index ->
            Census_index.save index path;
            Format.printf "census index: %d functions to cost %d%s -> %s@."
              (Census_index.size index) (Census_index.depth index)
              (if Census_index.is_complete index then " (complete)" else "")
              path
        | None -> ())
    | None -> if complete then ignore (build_index ()));
    let counts = if paper_variant then Fmcf.paper_counts census else Fmcf.counts census in
    if Library.coset_reduction library then begin
      Format.printf "Table 2: number of circuits with cost k (%d qubits, depth %d%s)@."
        qubits depth
        (if Fmcf.quotiented census then ", symmetry quotient" else "");
      Format.printf "Cost k  :";
      List.iter (fun (k, _) -> Format.printf " %6d" k) counts;
      Format.printf "@.|G[k]|  :";
      List.iter (fun (_, n) -> Format.printf " %6d" n) counts;
      Format.printf "@.|S%d[k]| :" (1 lsl qubits);
      List.iter (fun (_, n) -> Format.printf " %6d" (n * (1 lsl qubits))) counts
    end
    else begin
      (* No free NOT layer: the census counts the full symmetric group
         directly, so the zero-fixing |G[k]| row and its 2^n-scaled coset
         row would both be wrong here. *)
      Format.printf
        "Census: number of circuits with cost k (library %s, %d qubits, \
         depth %d%s)@."
        (Library.name library) qubits depth
        (if Fmcf.quotiented census then ", symmetry quotient" else "");
      Format.printf "Cost k  :";
      List.iter (fun (k, _) -> Format.printf " %6d" k) counts;
      Format.printf "@.|S%d[k]| :" (1 lsl qubits);
      List.iter (fun (_, n) -> Format.printf " %6d" n) counts
    end;
    Format.printf "@.total functions found: %d; search states: %d; %.2fs@."
      (Fmcf.total_found census)
      (Search.size (Fmcf.search census))
      elapsed;
    if stats then print_quotient_stats census;
    (match dstats with
    | Some d ->
        Format.printf
          "distributed: %d/%d workers; %d items (%d inline); %d retries, %d \
           reassignments, %d rejected deltas, %d worker deaths@."
          d.Distrib.workers_connected d.Distrib.workers_requested
          d.Distrib.items d.Distrib.inline_items d.Distrib.retries
          d.Distrib.reassignments d.Distrib.rejected_deltas
          d.Distrib.worker_deaths
    | None -> ());
    (match note with
    | Some n -> Format.printf "*** %s ***@." n
    | None -> ());
    if Telemetry.enabled () then Telemetry.log_summary ();
    match reason with
    | Fmcf.Completed -> if !sweep_cancelled then exit_interrupt else exit_ok
    | Fmcf.Timed_out -> exit_timeout
    | Fmcf.Budget_states | Fmcf.Budget_mem -> exit_budget
    | Fmcf.Cancelled -> exit_interrupt
  in
  let paper_flag =
    Arg.(value & flag & info [ "paper-variant" ]
           ~doc:"Report the counts exactly as printed in the paper's Table 2 \
                 (reproducing its two counting artifacts at k = 2, 3).  \
                 Incompatible with $(b,--quotient).")
  in
  let quotient_flag =
    Arg.(value & flag & info [ "quotient" ]
           ~doc:"Run the BFS over canonical orbit representatives under the \
                 library's wire-relabeling symmetry group (Schreier-verified; \
                 see doc/PERFORMANCE.md, 'Symmetry quotient').  The arena \
                 stores ~200x fewer states at depth 7 and every reported \
                 count, member, witness cascade and emitted index is \
                 byte-identical to the unquotiented run.  Checkpoints are \
                 written in the v2 format and resume quotiented.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"After the census, print the per-depth symmetry-quotient \
                 analysis: raw state counts vs orbit counts and the measured \
                 reduction factor (from the search.quotient.* telemetry in \
                 quotient mode; computed by canonicalizing the raw arena \
                 otherwise).")
  in
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Save the census (cost, function, witness cascade) as TSV.  \
                 Interrupted or budget-limited runs are marked with a \
                 '# PARTIAL' comment.")
  in
  let emit_index_arg =
    Arg.(value & opt (some checkpoint_path) None & info [ "emit-index" ] ~docv:"FILE"
           ~doc:"Write a persistent census index (function -> exact cost + \
                 witness cascade, QSYNIDX2 format, written atomically) to \
                 $(docv).  Later $(b,qsynth synth --index) runs answer indexed \
                 functions by binary search instead of a BFS, and treat misses \
                 as a proven cost lower bound.  A partial census indexes the \
                 completed horizon only; see $(b,--complete) for total \
                 coverage.")
  in
  let complete_flag =
    Arg.(value & flag & info [ "complete" ]
           ~doc:"After the census, sweep every zero-fixing function it did \
                 not reach with one meet-in-the-middle query each (against \
                 the census's own forward wave, frozen and shared across \
                 $(b,--jobs) domains; Theorem 2's NOT-coset factor is \
                 enumerated, not searched), print the coverage proof and full \
                 cost spectrum, and mark the $(b,--emit-index) file complete — \
                 a daemon serving it answers every realizable request from \
                 the index alone.  The emitted bytes are identical across \
                 $(b,--jobs), $(b,--workers) and $(b,--quotient).  Requires a \
                 census that ran to completion (not stopped by budget or \
                 timeout).")
  in
  let checkpoint_arg =
    Arg.(value & opt (some checkpoint_path) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Write a crash-safe snapshot of the search to $(docv) at level \
                 boundaries (atomically: temp file + rename), and a final one \
                 on any early stop.  Resume with $(b,--resume).")
  in
  let every_arg =
    Arg.(value & opt (pos_int ~what:"K") 1 & info [ "checkpoint-every" ] ~docv:"K"
           ~doc:"Snapshot every $(docv)-th level (default 1: every level).")
  in
  let resume_arg =
    Arg.(value & opt (some snapshot_path) None & info [ "resume" ] ~docv:"FILE"
           ~doc:"Restore the search from a snapshot written by $(b,--checkpoint) \
                 and continue to --depth.  The resumed census is identical to an \
                 uninterrupted run's.  The snapshot must come from the same gate \
                 library (checked by fingerprint).")
  in
  let max_states_arg =
    Arg.(value & opt (some (pos_int ~what:"N")) None & info [ "max-states" ] ~docv:"N"
           ~doc:"Stop before expanding the next level once $(docv) search states \
                 are stored; the census is reported as partial (exit 125).")
  in
  let max_mem_arg =
    Arg.(value & opt (some byte_size) None & info [ "max-mem" ] ~docv:"BYTES"
           ~doc:"Stop before expanding the next level once the state arenas \
                 reserve $(docv) bytes (K/M/G suffixes accepted); the census is \
                 reported as partial (exit 125).")
  in
  let timeout_arg =
    Arg.(value & opt (some (pos_float ~what:"SECONDS")) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Stop after $(docv) seconds of wall clock, abandoning any \
                   half-expanded level cleanly; the census is reported as \
                   partial (exit 124).")
  in
  let workers_arg =
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
           ~doc:"Distribute each level's expansion across $(docv) worker \
                 processes (spawned as $(b,qsynth census-worker) over a \
                 socketpair, or with $(b,--worker-cmd)).  The merged result \
                 is byte-identical to a single-process run; crashed, stalled \
                 or corrupt workers are retried, reassigned, and ultimately \
                 expanded inline by the coordinator (doc/ROBUSTNESS.md, \
                 'Distributed census').  Default 0: in-process search.")
  in
  let worker_cmd_arg =
    Arg.(value & opt (some string) None & info [ "worker-cmd" ] ~docv:"CMD"
           ~doc:"Spawn each $(b,--workers) worker as $(b,sh -c) $(docv) \
                 instead of re-executing this binary; the command must speak \
                 the worker protocol on stdin/stdout (e.g. \
                 'ssh host qsynth census-worker').")
  in
  let attach_arg =
    Arg.(value & opt_all string [] & info [ "attach" ] ~docv:"ADDR"
           ~doc:"Attach a worker already listening at $(docv) (unix:PATH or \
                 HOST:PORT, started with $(b,qsynth census-worker --listen)).  \
                 Repeatable; combines with $(b,--workers).")
  in
  Cmd.v
    (Cmd.info "census" ~exits:contract_exits
       ~doc:"Reproduce Table 2: |G[k]| for k = 0..depth.")
    Term.(
      const run $ telemetry_term $ qubits_arg $ depth_arg $ jobs_arg
      $ library_arg $ paper_flag $ quotient_flag $ stats_flag $ save_arg
      $ emit_index_arg $ complete_flag $ checkpoint_arg $ every_arg
      $ resume_arg $ max_states_arg $ max_mem_arg $ timeout_arg $ workers_arg
      $ worker_cmd_arg $ attach_arg)

(* The worker half of the distributed census: speaks the QSYNDST1
   protocol on stdin/stdout (the spawn path) or on a single accepted
   connection (--listen, the attach path).  Hidden from help — it is an
   implementation detail of `census --workers`. *)
let census_worker_cmd =
  let run listen =
    guarded @@ fun () ->
    (match listen with
    | Some addr -> Distrib.worker_listen addr
    | None -> Distrib.worker_main Unix.stdin Unix.stdout);
    exit_ok
  in
  let listen_arg =
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR"
           ~doc:"Bind $(docv) (unix:PATH or HOST:PORT), accept one \
                 coordinator connection, serve it, and exit.  Without this \
                 flag the worker speaks the protocol on stdin/stdout.")
  in
  Cmd.v
    (Cmd.info "census-worker" ~docs:Manpage.s_none ~exits:contract_exits
       ~doc:"(internal) worker process for $(b,qsynth census --workers).")
    Term.(const run $ listen_arg)

(* {1 The unified query surface}

   synth, query, batch and serve all speak Mce.Request/Mce.Response; a
   response rendered with --json is byte-identical no matter which
   transport produced it (doc/API.md). *)

let enumerate_limit = 10_000

(* Exit code for a response: Ok bodies (including certified
   Unrealizable) succeed; Cancelled follows the interrupt contract. *)
let response_exit (resp : Mce.Response.t) =
  match resp.Mce.Response.body with
  | Ok _ -> exit_ok
  | Error Mce.Response.Cancelled -> exit_interrupt
  | Error _ -> exit_runtime

(* Human rendering shared by synth and query; verification runs here, on
   the client side — the wire carries cost certificates, not trust. *)
let print_response_human library t0 (resp : Mce.Response.t) =
  let elapsed = Unix.gettimeofday () -. t0 in
  let pp_one (r : Mce.result) =
    Format.printf "cost %d (%.3fs): %s%a  [verified: %b]@." r.Mce.cost elapsed
      (if r.Mce.not_mask = 0 then ""
       else Printf.sprintf "NOT(mask=%d) * " r.Mce.not_mask)
      Cascade.pp r.Mce.cascade
      (Verify.result_valid library r)
  in
  match resp.Mce.Response.body with
  | Ok { payload = Mce.Response.Synthesized { target; not_mask; cascade; cost }; _ }
    ->
      pp_one { Mce.target; not_mask; cascade; cost }
  | Ok { payload = Mce.Response.Unrealizable { max_depth }; _ } ->
      Format.printf "no realization within depth %d@." max_depth
  | Ok { payload = Mce.Response.Witnesses { count }; _ } ->
      Format.printf "distinct minimal witnesses: %d@." count
  | Ok
      {
        payload = Mce.Response.Realizations { target; not_mask; cost; cascades; complete };
        _;
      } ->
      if cascades = [] then
        Format.printf "no realization within the depth bound@."
      else begin
        Format.printf "%d minimal realization(s) of cost %d (%.3fs)%s:@."
          (List.length cascades) cost elapsed
          (if complete then "" else ", truncated at the enumeration limit");
        List.iter
          (fun cascade ->
            Format.printf "  %s%a  [verified: %b]@."
              (if not_mask = 0 then ""
               else Printf.sprintf "NOT(mask=%d) * " not_mask)
              Cascade.pp cascade
              (Verify.result_valid library
                 { Mce.target; not_mask; cascade; cost = List.length cascade }))
          cascades
      end
  | Error Mce.Response.Cancelled -> Format.eprintf "qsynth: search interrupted@."
  | Error (Mce.Response.Bad_request msg) | Error (Mce.Response.Unsupported msg)
  | Error (Mce.Response.Internal msg) ->
      Format.eprintf "qsynth: %s@." msg
  | Error (Mce.Response.Overloaded { retry_after_ms }) ->
      Format.eprintf "qsynth: server overloaded; retry after %d ms@." retry_after_ms
  | Error Mce.Response.Deadline_exceeded ->
      Format.eprintf "qsynth: deadline exceeded@."
  | Error Mce.Response.Shutting_down ->
      Format.eprintf "qsynth: server is shutting down@."

(* One-shot Synthesize for an already-parsed target (describe/draw). *)
let solve_target ?(max_depth = 7) library target =
  let spec =
    String.concat ","
      (List.map string_of_int (Reversible.Revfun.output_column target))
  in
  let req =
    Mce.Request.make ~qubits:(Reversible.Revfun.bits target) ~max_depth spec
  in
  Mce.Response.result_of (Mce.solve library req)

let warm_depth_arg =
  let doc =
    "Build the meet-in-the-middle engine with its shared forward wave grown to \
     exactly $(docv) and capped there.  Every query then runs against an \
     immutable wave, which makes answers (and $(b,--json) bytes) a pure \
     function of the request — match the daemon's $(b,--warm-depth) to \
     reproduce its responses one-shot.  0 (the default) disables the engine."
  in
  Arg.(value & opt int 0 & info [ "warm-depth" ] ~docv:"D" ~doc)

let index_arg =
  Arg.(value & opt (some snapshot_path) None & info [ "index" ] ~docv:"FILE"
         ~doc:"Answer from a census index written by $(b,qsynth census \
               --emit-index): an indexed function costs one binary search \
               (no BFS at all), and a miss proves the cost exceeds the index \
               depth — certifying 'no realization' outright when the index \
               covers $(b,--depth), or priming the bidirectional engine with \
               the bound.  An index built with $(b,census --complete) never \
               misses: every realizable request is answered from the file.  \
               Integrity (CRC, library and symmetry fingerprints, record \
               structure, cost histogram) is always validated at load, plus \
               a deterministic sample of witness replays; $(b,--verify-index) \
               replays them all.")

let verify_index_arg =
  Arg.(value & flag & info [ "verify-index" ]
         ~doc:"Replay $(i,every) witness of the $(b,--index) file through the \
               library's multiple-valued semantics at load time, proving the \
               file correct by construction rather than merely uncorrupted.  \
               Costs O(functions x cost) once at startup; without it a \
               deterministic ~1/64 sample is replayed on top of the always-on \
               CRC/fingerprint/structure checks.")

(* synth *)

let synth_cmd =
  let run finish_telemetry qubits depth jobs library_name all json index_path
      verify_index use_bidir warm_depth spec =
    guarded ~finish:finish_telemetry @@ fun () ->
    let library = Library.of_name ~qubits library_name in
    let should_stop = install_cancel () in
    (* the load validates magic/CRC/fingerprints/structure (and witnesses
       per --verify-index) and raises Checkpoint.Corrupt/Mismatch —
       mapped to exit 1 by [guarded] *)
    let verify =
      if verify_index then Census_index.Full else Census_index.Sample
    in
    let index = Option.map (Census_index.load ~verify library) index_path in
    if not json then begin
      let target = Reversible.Spec.parse ~bits:qubits spec in
      Format.printf "target: %a@." Reversible.Revfun.pp target;
      match index with
      | Some idx ->
          Format.printf "index: %d functions, exact to cost %d%s@."
            (Census_index.size idx) (Census_index.depth idx)
            (if Census_index.is_complete idx then " (complete)" else "")
      | None -> ()
    end;
    let bidir =
      if warm_depth > 0 then begin
        let engine = Bidir.create ~jobs ~max_fwd_depth:warm_depth library in
        Bidir.warm ~should_stop engine ~depth:warm_depth;
        Some engine
      end
      else if use_bidir then Some (Bidir.create ~jobs library)
      else None
    in
    let task =
      if all then Mce.Request.Enumerate { limit = enumerate_limit }
      else Mce.Request.Synthesize
    in
    let req =
      Mce.Request.make ~qubits ~library:library_name ~task ~max_depth:depth spec
    in
    let t0 = Unix.gettimeofday () in
    let resp = Mce.solve ~jobs ~should_stop ?index ?bidir library req in
    if json then print_endline (Mce.Response.to_string resp)
    else print_response_human library t0 resp;
    response_exit resp
  in
  let all_flag =
    Arg.(value & flag & info [ "a"; "all" ] ~doc:"Enumerate all minimal realizations.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the response as one line of JSON — the exact bytes the \
                 $(b,qsynth serve) daemon would answer for the same request \
                 and engine resources (schema: doc/API.md).  Suppresses the \
                 human report and client-side verification.")
  in
  let bidir_flag =
    Arg.(value & flag & info [ "bidir" ]
           ~doc:"Use the meet-in-the-middle engine: a forward wave from the \
                 identity joins a backward wave from the target, reaching cost \
                 2x the forward depth — functions of cost 8+ that the forward \
                 search cannot touch synthesize in seconds, with the same \
                 exact-minimality guarantee.")
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Named circuit (toffoli, peres, g2, g3, g4, fredkin), 1-based \
                 cycle notation like '(7,8)', or a truth-table output column \
                 like '0,1,2,3,4,5,7,6'.")
  in
  Cmd.v
    (Cmd.info "synth" ~exits:contract_exits
       ~doc:"Synthesize a minimal-cost quantum cascade for a reversible function \
             (the paper's MCE algorithm).")
    Term.(
      const run $ telemetry_term $ qubits_arg $ depth_arg $ jobs_arg
      $ library_arg $ all_flag $ json_flag $ index_arg $ verify_index_arg
      $ bidir_flag $ warm_depth_arg $ spec_arg)

(* serve *)

let socket_arg =
  let doc =
    "Unix-domain socket path of the daemon (the transport endpoint of the \
     length-prefixed JSON protocol, doc/API.md)."
  in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  (* serve needs the --metrics path itself (SIGUSR1 live dump), not just
     the snapshot-writer closure, so it pairs setup_telemetry's result
     with the raw path instead of using [telemetry_term]. *)
  let serve_telemetry_term =
    Term.(
      const (fun v m t -> (setup_telemetry v m t, m))
      $ verbose_arg $ metrics_arg $ trace_arg)
  in
  let run (finish_telemetry, metrics_path) qubits jobs library_name
      also_libraries socket index_path verify_index warm_depth workers
      queue_capacity cache_capacity metrics_port trace_file slow_ms =
    guarded ~finish:finish_telemetry @@ fun () ->
    (* Readiness: false until the index is loaded, the engine warmed and
       the daemon accepting; false again the moment the drain begins —
       scrapers see the flip before the Unix socket unlinks. *)
    let accepting = Atomic.make false in
    let daemon_ref = ref None in
    let service_ref = ref None in
    let ready () =
      match !daemon_ref with
      | Some d -> Atomic.get accepting && not (Server.Daemon.draining d)
      | None -> false
    in
    (* The /readyz body: one line summarizing the published index so a
       deployment can assert completeness without the metrics scrape.
       [Http.start] runs before the index loads, hence the ref. *)
    let describe () =
      match Option.bind !service_ref Server.Service.index_status with
      | Some (size, depth, coverage, complete) ->
          Printf.sprintf "ok functions=%d depth=%d coverage=%d complete=%b\n"
            size depth coverage complete
      | None -> "ok\n"
    in
    let http =
      Option.map
        (fun port -> Server.Http.start ~port ~ready ~describe ())
        metrics_port
    in
    let trace_oc =
      Option.map
        (fun path ->
          let oc = open_out path in
          Telemetry.set_enabled true;
          Telemetry.set_jsonl (Some oc);
          oc)
        trace_file
    in
    let library = Library.of_name ~qubits library_name in
    let secondary =
      List.filter_map
        (fun n ->
          if String.equal n library_name then None
          else Some (Library.of_name ~qubits n))
        (List.sort_uniq String.compare also_libraries)
    in
    let verify =
      if verify_index then Census_index.Full else Census_index.Sample
    in
    (* mmap, not read: the daemon probes records in place off the page
       cache, so cold start is O(header + CRC scan) instead of a full
       heap copy, and two daemons on one host share the file's pages. *)
    let index =
      Option.map (Census_index.load_mmap ~verify library) index_path
    in
    (match index with
    | Some idx ->
        Format.printf "index: %d functions, exact to cost %d%s@."
          (Census_index.size idx) (Census_index.depth idx)
          (if Census_index.is_complete idx then " (complete)" else "")
    | None -> ());
    let service =
      Server.Service.create ~jobs ?index ~warm_depth ~cache_capacity
        ~index_verify:verify ~libraries:secondary library
    in
    if secondary <> [] then
      Format.printf "libraries: %s@."
        (String.concat ", " (Server.Service.libraries service));
    service_ref := Some service;
    let daemon =
      Server.Daemon.start ~workers ~queue_capacity ?slow_ms
        ~trace:(trace_file <> None) ~socket service
    in
    daemon_ref := Some daemon;
    Atomic.set accepting true;
    (* Park until SIGTERM/SIGINT requests the drain; SIGUSR1 dumps a
       live snapshot to the --metrics path, SIGHUP hot-reloads the
       census index — both without restarting. *)
    let stop_requested = Atomic.make false in
    let usr1 = Atomic.make false in
    let hup = Atomic.make false in
    let previous =
      List.map
        (fun s ->
          ( s,
            Sys.signal s
              (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)) ))
        [ Sys.sigterm; Sys.sigint ]
    in
    (try
       Sys.set_signal Sys.sigusr1
         (Sys.Signal_handle (fun _ -> Atomic.set usr1 true))
     with Invalid_argument _ -> ());
    (try
       Sys.set_signal Sys.sighup
         (Sys.Signal_handle (fun _ -> Atomic.set hup true))
     with Invalid_argument _ -> ());
    (* One structured line per reload attempt, success or failure, so
       operators can grep the daemon's stderr for reload outcomes. *)
    let log_reload fields =
      let obj =
        Telemetry.Json.Obj (("type", Telemetry.Json.String "index_reload") :: fields)
      in
      Format.eprintf "%s@." (Telemetry.Json.to_string obj)
    in
    let reload_index () =
      match index_path with
      | None ->
          log_reload
            [ ("ok", Telemetry.Json.Bool false);
              ("error", Telemetry.Json.String "no --index configured") ]
      | Some path -> (
          match Server.Service.reload_index service path with
          | size, depth ->
              let coverage, complete =
                match Server.Service.index_status service with
                | Some (_, _, coverage, complete) -> (coverage, complete)
                | None -> (0, false)
              in
              log_reload
                [ ("ok", Telemetry.Json.Bool true);
                  ("path", Telemetry.Json.String path);
                  ("functions", Telemetry.Json.Int size);
                  ("depth", Telemetry.Json.Int depth);
                  ("coverage", Telemetry.Json.Int coverage);
                  ("complete", Telemetry.Json.Bool complete) ]
          | exception
              (( Checkpoint.Corrupt msg | Checkpoint.Mismatch msg
               | Sys_error msg ) as exn) ->
              let kind =
                match exn with
                | Checkpoint.Corrupt _ -> "corrupt"
                | Checkpoint.Mismatch _ -> "mismatch"
                | _ -> "io"
              in
              log_reload
                [ ("ok", Telemetry.Json.Bool false);
                  ("path", Telemetry.Json.String path);
                  ("kind", Telemetry.Json.String kind);
                  ("error", Telemetry.Json.String msg) ])
    in
    while not (Atomic.get stop_requested) do
      if Atomic.get usr1 then begin
        Atomic.set usr1 false;
        match metrics_path with
        | Some path -> (
            try
              Telemetry.write_snapshot path;
              Format.eprintf "telemetry snapshot written to %s@." path
            with Sys_error msg ->
              Format.eprintf "error: cannot write telemetry snapshot: %s@." msg)
        | None -> Format.eprintf "qsynth: SIGUSR1 ignored (no --metrics FILE)@."
      end;
      if Atomic.get hup then begin
        Atomic.set hup false;
        reload_index ()
      end;
      Thread.delay 0.05
    done;
    Atomic.set accepting false;
    Server.Daemon.stop daemon;
    Server.Daemon.wait daemon;
    Option.iter Server.Http.stop http;
    Option.iter
      (fun oc ->
        Telemetry.set_jsonl None;
        close_out oc)
      trace_oc;
    List.iter
      (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ())
      previous;
    exit_ok
  in
  let workers_arg =
    Arg.(value & opt (pos_int ~what:"WORKERS") 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains evaluating queries in parallel.")
  in
  let also_library_arg =
    let choices = List.map (fun n -> (n, n)) Library.Registry.names in
    Arg.(value & opt_all (enum choices) [] & info [ "also-library" ] ~docv:"NAME"
           ~doc:(Printf.sprintf
                   "Additionally serve requests for library $(docv) (%s; \
                    repeatable).  Each extra library gets its own cold \
                    forward-BFS engine, so its answers are byte-identical to \
                    one-shot $(b,qsynth synth --json --library) $(docv); the \
                    $(b,--index) and $(b,--warm-depth) engines stay bound to \
                    the primary $(b,--library).  Requests naming a library \
                    the daemon was not configured with fail with the \
                    'bad-request' error listing the configured ones."
                   (Arg.doc_alts_enum choices)))
  in
  let queue_arg =
    Arg.(value & opt (pos_int ~what:"QUEUE") 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Bound on the accepted-but-unstarted request queue; beyond it \
                 requests are rejected immediately with the 'overloaded' error \
                 and a retry-after hint (backpressure, not buffering).")
  in
  let cache_arg =
    Arg.(value & opt int 1024 & info [ "cache" ] ~docv:"N"
           ~doc:"LRU response-cache capacity (0 disables).  Hits and misses \
                 appear as $(b,server.cache.hit)/$(b,server.cache.miss) in \
                 $(b,--metrics) snapshots.")
  in
  let port =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 && n <= 65535 -> Ok n
      | Some _ -> Error (`Msg "PORT must be in 0..65535")
      | None -> Error (`Msg (Printf.sprintf "invalid PORT value %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let metrics_port_arg =
    Arg.(value & opt (some port) None & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve observability HTTP endpoints on 127.0.0.1:$(docv): \
                 $(b,/metrics) (Prometheus text exposition of the telemetry \
                 registry), $(b,/healthz) (liveness) and $(b,/readyz) \
                 (readiness: 503 until the engine is warm and again once the \
                 drain begins; the 200 body is a one-line index summary — \
                 functions, depth, coverage, completeness).  0 picks an \
                 ephemeral port.")
  in
  let trace_file_arg =
    Arg.(value & opt (some string) None & info [ "trace-file" ] ~docv:"FILE"
           ~doc:"Enable per-request tracing: every request gets a trace id \
                 (echoed in the response's $(b,trace) field) and its closed \
                 span tree is appended to $(docv) as JSON lines.")
  in
  let slow_arg =
    let nonneg =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 0 -> Ok n
        | Some _ -> Error (`Msg "N must be >= 0")
        | None -> Error (`Msg (Printf.sprintf "invalid value %S" s))
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    Arg.(value & opt (some nonneg) None & info [ "slow-ms" ] ~docv:"N"
           ~doc:"Log every request whose total latency (queueing included) \
                 reaches $(docv) milliseconds as one structured JSON line on \
                 stderr: trace id, request key, plan, per-stage breakdown, \
                 queue depth at admission.  0 logs every request.")
  in
  Cmd.v
    (Cmd.info "serve" ~exits:contract_exits
       ~doc:"Run the synthesis daemon: one warm engine (census index + \
             fixed-depth forward wave + meet-in-the-middle), shared by every \
             client over a Unix-domain socket.  Drains gracefully on \
             SIGTERM/SIGINT: stops accepting, answers everything already \
             accepted, unlinks the socket, exits 0.  SIGUSR1 dumps a live \
             telemetry snapshot to the $(b,--metrics) path.  SIGHUP \
             re-reads the $(b,--index) file and hot-swaps it atomically \
             (validated first; kept unchanged on corruption or mismatch) \
             without dropping in-flight requests.")
    Term.(
      const run $ serve_telemetry_term $ qubits_arg $ jobs_arg $ library_arg
      $ also_library_arg $ socket_arg $ index_arg $ verify_index_arg
      $ warm_depth_arg $ workers_arg $ queue_arg $ cache_arg
      $ metrics_port_arg $ trace_file_arg $ slow_arg)

(* query *)

let query_cmd =
  let run socket qubits depth plan count enumerate id deadline_ms spec =
    guarded @@ fun () ->
    let task =
      match (count, enumerate) with
      | true, Some _ ->
          failwith "--count and --enumerate are mutually exclusive"
      | true, None -> Mce.Request.Count_witnesses
      | false, Some limit -> Mce.Request.Enumerate { limit }
      | false, None -> Mce.Request.Synthesize
    in
    let req =
      Mce.Request.make ?id ~qubits ~task ~max_depth:depth ~plan ?deadline_ms spec
    in
    let fd = Server.Protocol.connect socket in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    match Server.Protocol.call fd req with
    | Error msg -> failwith msg
    | Ok resp ->
        print_endline (Mce.Response.to_string resp);
        response_exit resp
  in
  let plan_arg =
    let plans =
      [
        ("auto", Mce.Request.Auto);
        ("index", Mce.Request.Index);
        ("bidir", Mce.Request.Bidir);
        ("forward", Mce.Request.Forward);
      ]
    in
    Arg.(value & opt (enum plans) Mce.Request.Auto & info [ "plan" ] ~docv:"PLAN"
           ~doc:(Printf.sprintf
                   "Pin the execution plan: %s.  $(b,auto) picks the cheapest \
                    sound plan the daemon holds; pinned plans fail with the \
                    'unsupported' error when the daemon lacks the engine."
                   (Arg.doc_alts_enum plans)))
  in
  let count_flag =
    Arg.(value & flag & info [ "count" ]
           ~doc:"Ask for the number of distinct minimal witnesses instead of a \
                 cascade.")
  in
  let enumerate_arg =
    Arg.(value & opt (some int) None & info [ "enumerate" ] ~docv:"LIMIT"
           ~doc:"Ask for every minimal realization, up to $(docv).")
  in
  let id_arg =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID"
           ~doc:"Correlation token echoed verbatim in the response.")
  in
  let deadline_arg =
    Arg.(value & opt (some (pos_int ~what:"MS")) None & info [ "deadline" ] ~docv:"MS"
           ~doc:"Per-request compute budget in milliseconds; past it the \
                 daemon answers the 'deadline-exceeded' error.")
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Target (same formats as synth).")
  in
  Cmd.v
    (Cmd.info "query" ~exits:contract_exits
       ~doc:"Send one request to a running $(b,qsynth serve) daemon and print \
             the JSON response line — byte-identical to $(b,qsynth synth \
             --json) under the same engine resources.")
    Term.(
      const run $ socket_arg $ qubits_arg $ depth_arg $ plan_arg
      $ count_flag $ enumerate_arg $ id_arg $ deadline_arg $ spec_arg)

(* batch *)

let m_client_retries = Telemetry.Counter.create "client.retries"

let batch_cmd =
  let run finish_telemetry qubits jobs library_name socket index_path
      verify_index warm_depth max_retries file =
    guarded ~finish:finish_telemetry @@ fun () ->
    let ic = if file = "-" then stdin else open_in file in
    Fun.protect ~finally:(fun () -> if file <> "-" then close_in_noerr ic)
    @@ fun () ->
    let answer =
      match socket with
      | Some path ->
          let fd = Server.Protocol.connect path in
          at_exit (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
          let rng = Random.State.make [| 0x0b5e; max_retries |] in
          fun req ->
            (* An Overloaded reply is backpressure, not an answer: honor
               the daemon's retry_after_ms hint with capped exponential
               backoff plus jitter, up to --max-retries, then let the
               last reply through so the output line records the drop. *)
            let rec attempt n =
              let resp =
                match Server.Protocol.call fd req with
                | Ok resp -> resp
                | Error msg -> failwith msg
              in
              match resp.Mce.Response.body with
              | Error (Mce.Response.Overloaded { retry_after_ms })
                when n < max_retries ->
                  let base = float_of_int (max 1 retry_after_ms) /. 1000. in
                  let d = Float.min 2.0 (base *. (2. ** float_of_int n)) in
                  Unix.sleepf (d +. Random.State.float rng (0.25 *. d));
                  Telemetry.Counter.incr m_client_retries;
                  attempt (n + 1)
              | _ -> resp
            in
            attempt 0
      | None ->
          (* no daemon: evaluate locally against one warm service, so a
             whole file amortizes the same warm-up a daemon would *)
          let library = Library.of_name ~qubits library_name in
          let verify =
            if verify_index then Census_index.Full else Census_index.Sample
          in
          let index =
            Option.map (Census_index.load ~verify library) index_path
          in
          let service =
            Server.Service.create ~jobs ?index ~warm_depth
              ~index_verify:verify library
          in
          let should_stop = install_cancel () in
          fun req -> Server.Service.answer ~should_stop service req
    in
    let failures = ref 0 in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         if String.trim line <> "" then begin
           let resp =
             match Telemetry.Json.of_string line with
             | exception Telemetry.Json.Parse_error msg ->
                 incr failures;
                 {
                   Mce.Response.id = None;
                   trace = None;
                   qubits = 0;
                   body =
                     Error
                       (Mce.Response.Bad_request
                          (Printf.sprintf "line %d: invalid JSON: %s" !lineno msg));
                 }
             | json -> (
                 match Mce.Request.of_json json with
                 | Error msg ->
                     incr failures;
                     {
                       Mce.Response.id = None;
                       trace = None;
                       qubits = 0;
                       body =
                         Error
                           (Mce.Response.Bad_request
                              (Printf.sprintf "line %d: %s" !lineno msg));
                     }
                 | Ok req -> answer req)
           in
           print_endline (Mce.Response.to_string resp)
         end
       done
     with End_of_file -> ());
    if !failures = 0 then exit_ok else exit_runtime
  in
  let socket_opt_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Send the batch to a running daemon instead of evaluating \
                 locally.")
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"JSONL file of requests, one JSON object per line ('-' for \
                 stdin).  Responses stream to stdout in input order, one line \
                 each.")
  in
  let max_retries_arg =
    Arg.(value & opt int 3 & info [ "max-retries" ] ~docv:"N"
           ~doc:"With $(b,--socket): retry a request up to $(docv) times when \
                 the daemon replies Overloaded, sleeping its retry_after_ms \
                 hint with capped exponential backoff and jitter between \
                 attempts (0 disables; retries are counted in the \
                 client.retries telemetry counter).")
  in
  Cmd.v
    (Cmd.info "batch" ~exits:contract_exits
       ~doc:"Evaluate a JSONL file of requests — locally against one warm \
             engine, or through a daemon with $(b,--socket).")
    Term.(
      const run $ telemetry_term $ qubits_arg $ jobs_arg $ library_arg
      $ socket_opt_arg $ index_arg $ verify_index_arg $ warm_depth_arg
      $ max_retries_arg $ file_arg)

(* table1 *)

let table1_cmd =
  let run () =
    guarded @@ fun () ->
    let gate = Gate.make Gate.Controlled_v ~target:1 ~control:0 in
    let rows =
      Mvl.Truth_table.labeled_rows ~order:Mvl.Truth_table.table1_order (Gate.apply gate)
    in
    Format.printf "Table 1: truth table of the 2-qubit controlled-V gate@.";
    Mvl.Truth_table.pp_table ~wires:[ "A"; "B" ] Format.std_formatter rows;
    (* The paper prints the permutation over Table 1's own row order. *)
    let img = Array.make (List.length rows) 0 in
    List.iter (fun (li, _, _, lo) -> img.(li - 1) <- lo - 1) rows;
    Format.printf "permutation representation: %a@." Permgroup.Perm.pp
      (Permgroup.Perm.of_array img);
    exit_ok
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1 (2-qubit controlled-V truth table).")
    Term.(const run $ const ())

(* universal *)

let universal_cmd =
  let run finish_telemetry jobs =
    guarded ~finish:finish_telemetry @@ fun () ->
    let library = make_library 3 in
    let census = Fmcf.run ~max_depth:4 ~jobs library in
    let linear, family = Universality.split_g4 census in
    Format.printf "G[4]: %d circuits = %d Feynman-realizable + %d Peres-family@."
      (List.length linear + List.length family)
      (List.length linear) (List.length family);
    let universal =
      List.filter (fun (m : Fmcf.member) -> Universality.is_universal m.Fmcf.func) family
    in
    Format.printf "universal Peres-family circuits: %d@." (List.length universal);
    let orbits =
      Universality.wire_orbits (List.map (fun (m : Fmcf.member) -> m.Fmcf.func) family)
    in
    Format.printf "wire-relabeling orbits: %s@."
      (String.concat " + "
         (List.map (fun o -> string_of_int (List.length o)) orbits));
    List.iteri
      (fun i orbit ->
        Format.printf "  orbit %d representative: %a@." (i + 1) Reversible.Revfun.pp
          (List.hd orbit))
      orbits;
    let g_size, h_size = Universality.theorem2_check ~bits:3 in
    Format.printf "|G| = %d, |S8| = %d (Theorem 2 coset checks passed)@." g_size h_size;
    exit_ok
  in
  Cmd.v
    (Cmd.info "universal"
       ~doc:"Reproduce the Section 5 group-theory results: the 24 universal \
             cost-4 circuits, their orbits, |G| = 5040 and Theorem 2.")
    Term.(const run $ telemetry_term $ jobs_arg)

(* simulate *)

let simulate_cmd =
  let run qubits cascade_str input_str =
    guarded @@ fun () ->
    let library = make_library qubits in
    let cascade = Cascade.of_string ~qubits cascade_str in
    Format.printf "cascade: %a (cost %d, reasonable: %b)@." Cascade.pp cascade
      (Cascade.cost cascade)
      (Cascade.is_reasonable library cascade);
    let circuit = Automata.Prob_circuit.of_cascade library cascade in
    let inputs =
      match input_str with
      | Some s -> [ int_of_string s ]
      | None -> List.init (1 lsl qubits) Fun.id
    in
    List.iter
      (fun input ->
        let pattern = Automata.Prob_circuit.output_pattern circuit ~input in
        Format.printf "input %d -> pattern %a" input Mvl.Pattern.pp pattern;
        if Mvl.Pattern.is_binary pattern then Format.printf " (deterministic)@."
        else begin
          Format.printf " ; measurement:";
          List.iter
            (fun (code, p) -> Format.printf " %d:%a" code Qsim.Prob.pp p)
            (Automata.Measurement.support pattern);
          Format.printf "@."
        end)
      inputs;
    exit_ok
  in
  let cascade_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CASCADE"
           ~doc:"Gate cascade, e.g. 'VCB*FBA*VCA*V+CB'.")
  in
  let input_arg =
    Arg.(value & opt (some string) None & info [ "i"; "input" ] ~docv:"CODE"
           ~doc:"Binary input code (default: all).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a cascade on binary inputs; print quaternary outputs and exact \
             measurement distributions.")
    Term.(const run $ qubits_arg $ cascade_arg $ input_arg)

(* classical *)

let classical_cmd =
  let run spec_opt =
    guarded @@ fun () ->
    let libraries =
      [
        Reversible.Classical_synth.ncp_linear;
        Reversible.Classical_synth.ncp_toffoli;
        Reversible.Classical_synth.ncp_peres;
      ]
    in
    (match spec_opt with
    | None ->
        List.iter
          (fun library ->
            let result = Reversible.Classical_synth.census ~bits:3 library in
            Format.printf "%a@.@." Reversible.Classical_synth.pp_result result)
          libraries
    | Some spec ->
        let target = Reversible.Spec.parse ~bits:3 spec in
        List.iter
          (fun library ->
            match Reversible.Classical_synth.synthesize ~bits:3 library target with
            | Some (gates, count) ->
                Format.printf "%-18s %d gates: %s@."
                  library.Reversible.Classical_synth.label count
                  (String.concat "*"
                     (List.map
                        (fun g -> g.Reversible.Classical_synth.name)
                        gates))
            | None ->
                Format.printf "%-18s unreachable@."
                  library.Reversible.Classical_synth.label)
          libraries);
    exit_ok
  in
  let spec_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Optional circuit to factor into classical library gates; \
                 without it, census all three libraries.")
  in
  Cmd.v
    (Cmd.info "classical"
       ~doc:"Classical gate-library synthesis over all 40320 3-bit reversible \
             functions: the paper's Peres-vs-Toffoli library comparison.")
    Term.(const run $ spec_arg)

(* describe *)

let describe_cmd =
  let run qubits spec =
    guarded @@ fun () ->
    let library = make_library qubits in
    let target = Reversible.Spec.parse ~bits:qubits spec in
    Format.printf "cycles:   %a@." Reversible.Revfun.pp target;
    Format.printf "formulas: %s@." (Reversible.Anf.describe target);
    Format.printf "linear:   %b@." (Reversible.Anf.is_linear target);
    (match Reversible.Gf2.synthesize target with
    | Some (not_mask, cnots) ->
        Format.printf "affine decomposition: NOT(mask=%d) then %d CNOT(s)@." not_mask
          (List.length cnots)
    | None -> ());
    (match solve_target library target with
    | Some r ->
        Format.printf "quantum cost: %d@.@.%s@." r.Mce.cost
          (Draw.to_ascii ~qubits ~not_mask:r.Mce.not_mask r.Mce.cascade)
    | None -> Format.printf "quantum cost: beyond the default depth bound@.");
    exit_ok
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Circuit to describe (names, cycles, formulas or output lists).")
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Everything about one reversible function: cycle form, per-output \
             formulas (ANF), linearity, minimal quantum cascade and its drawing.")
    Term.(const run $ qubits_arg $ spec_arg)

(* spectrum *)

let spectrum_cmd =
  let run finish_telemetry depth jobs library_name probe =
    guarded ~finish:finish_telemetry @@ fun () ->
    let library = Library.of_name ~qubits:3 library_name in
    let t0 = Unix.gettimeofday () in
    let census = Fmcf.run ~max_depth:depth ~jobs library in
    Format.printf "census to depth %d: %.1fs, %d functions@." depth
      (Unix.gettimeofday () -. t0)
      (Fmcf.total_found census);
    let spectrum = Spectrum.analyze census in
    Format.printf "exact costs:";
    List.iter (fun (k, n) -> Format.printf " %d:%d" k n) spectrum.Spectrum.exact;
    Format.printf "@.beyond the census: %d elements, lower bound %d@."
      (List.length spectrum.Spectrum.bounds)
      (depth + 1);
    Format.printf "two-split upper bounds:";
    List.iter
      (fun (c, n) ->
        if c = max_int then Format.printf " unresolved:%d" n
        else Format.printf " %d:%d" c n)
      (Spectrum.upper_histogram spectrum);
    Format.printf "@.tight (exactly determined): %d of %d@."
      spectrum.Spectrum.tight
      (List.length spectrum.Spectrum.bounds);
    if probe then begin
      let t0 = Unix.gettimeofday () in
      let completion = Spectrum.complete census spectrum in
      Format.printf "frontier probes (%.1fs): |G[%d]| = %d, |G[%d]| = %d (exact)@."
        (Unix.gettimeofday () -. t0)
        (depth + 1) completion.Spectrum.probe_one (depth + 2)
        completion.Spectrum.probe_two;
      Format.printf "resolved tail:";
      List.iter
        (fun (c, n) -> Format.printf " %d:%d" c n)
        completion.Spectrum.resolved_tail;
      Format.printf "@.unresolved: %d@." completion.Spectrum.unresolved
    end;
    exit_ok
  in
  let depth_arg =
    Arg.(value & opt int 7 & info [ "d"; "depth" ] ~docv:"K" ~doc:"Census depth.")
  in
  let probe_flag =
    Arg.(value & flag & info [ "probe" ]
           ~doc:"Also probe one and two levels past the census depth (exact, \
                 memory-light, but slow: the probe re-walks the frontier without \
                 deduplication).")
  in
  Cmd.v
    (Cmd.info "spectrum"
       ~doc:"Complete the minimal-cost spectrum of the library's universe — \
             all 5040 NOT-free reversible functions under the paper's coset \
             reduction, all 40320 of S8 for a full-group library \
             ($(b,--library) nct/nft): exact costs up to the census depth, \
             provable bounds beyond.")
    Term.(const run $ telemetry_term $ depth_arg $ jobs_arg $ library_arg $ probe_flag)

(* draw *)

let draw_cmd =
  let run qubits depth spec =
    guarded @@ fun () ->
    let library = make_library qubits in
    let target = Reversible.Spec.parse ~bits:qubits spec in
    (match solve_target ~max_depth:depth library target with
    | None -> Format.printf "no realization within depth %d@." depth
    | Some r ->
        Format.printf "%a  (cost %d)@.@." Reversible.Revfun.pp target r.Mce.cost;
        Format.printf "%s@."
          (Draw.to_ascii ~qubits ~not_mask:r.Mce.not_mask r.Mce.cascade));
    exit_ok
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Circuit to synthesize and draw (same formats as synth).")
  in
  Cmd.v
    (Cmd.info "draw" ~doc:"Synthesize a circuit and render it as ASCII art.")
    Term.(const run $ qubits_arg $ depth_arg $ spec_arg)

(* weighted *)

let weighted_cmd =
  let run qubits max_cost model spec =
    guarded @@ fun () ->
    let library = make_library qubits in
    let target = Reversible.Spec.parse ~bits:qubits spec in
    (match Weighted.express ~max_cost library ~model target with
    | None -> Format.printf "no realization within cost %d@." max_cost
    | Some r ->
        Format.printf "model %s: cost %d, cascade %s%a  [verified: %b]@."
          (Cost_model.name model) r.Weighted.cost
          (if r.Weighted.not_mask = 0 then ""
           else Printf.sprintf "NOT(mask=%d) * " r.Weighted.not_mask)
          Cascade.pp r.Weighted.cascade
          (Verify.cascade_implements ~qubits ~not_mask:r.Weighted.not_mask
             r.Weighted.cascade target));
    exit_ok
  in
  let model_arg =
    (* Cmdliner enum: an unknown model is a usage error (exit 2) listing
       the alternatives, not a runtime failure. *)
    let models =
      [
        ("unit", Cost_model.unit);
        ("v-cheap", Cost_model.v_cheap);
        ("feynman-cheap", Cost_model.feynman_cheap);
      ]
    in
    Arg.(value & opt (enum models) Cost_model.unit & info [ "m"; "model" ] ~docv:"MODEL"
           ~doc:
             (Printf.sprintf "Cost model: %s." (Arg.doc_alts_enum models)))
  in
  let max_cost_arg =
    Arg.(value & opt int 8 & info [ "c"; "max-cost" ] ~docv:"C"
           ~doc:"Total cost bound for the Dijkstra search.")
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Circuit to synthesize (same formats as synth).")
  in
  Cmd.v
    (Cmd.info "weighted"
       ~doc:"Minimum-cost synthesis under a non-uniform gate cost model \
             (uniform-cost search).")
    Term.(const run $ qubits_arg $ max_cost_arg $ model_arg $ spec_arg)

(* ablation *)

let ablation_cmd =
  let run depth =
    guarded @@ fun () ->
    let library = make_library 3 in
    let constrained = Fmcf.run ~max_depth:depth library in
    let unconstrained = Fmcf.run ~max_depth:depth (Library.unconstrained library) in
    Format.printf "census with and without the reasonable-product constraint:@.";
    Format.printf "%-16s" "cost k";
    List.iter (fun (k, _) -> Format.printf " %6d" k) (Fmcf.counts constrained);
    Format.printf "@.%-16s" "constrained";
    List.iter (fun (_, n) -> Format.printf " %6d" n) (Fmcf.counts constrained);
    Format.printf "@.%-16s" "unconstrained";
    List.iter (fun (_, n) -> Format.printf " %6d" n) (Fmcf.counts unconstrained);
    Format.printf "@.";
    (* exhibit an unsound witness *)
    let unsound =
      List.find_map
        (fun level ->
          List.find_map
            (fun (m : Fmcf.member) ->
              let cascade = Fmcf.cascade_of_member unconstrained m in
              if Verify.cascade_implements ~qubits:3 cascade m.Fmcf.func then None
              else Some (cascade, m.Fmcf.func))
            level.Fmcf.members)
        (Fmcf.levels unconstrained)
    in
    (match unsound with
    | Some (cascade, func) ->
        Format.printf
          "unsound witness: %a claims %a in the multiple-valued model but its exact \
           unitary does not implement it — this is why Definition 1 bans mixed \
           control values.@."
          Cascade.pp cascade Reversible.Revfun.pp func
    | None -> Format.printf "no unsound witness within this depth.@.");
    exit_ok
  in
  let depth_arg =
    Arg.(value & opt int 4 & info [ "d"; "depth" ] ~docv:"K" ~doc:"Census depth.")
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Ablate the reasonable-product constraint and show the search \
             becomes unsound.")
    Term.(const run $ depth_arg)

(* libraries *)

let libraries_cmd =
  let run qubits =
    guarded @@ fun () ->
    Format.printf "%-10s %6s %6s  %-16s  %s@." "name" "qubits" "gates"
      "fingerprint" "summary";
    List.iter
      (fun d ->
        let lib = Library.Registry.instantiate ~qubits d in
        Format.printf "%-10s %6d %6d  %016Lx  %s@."
          (Library.Registry.name d) qubits (Library.size lib)
          (Checkpoint.fingerprint lib)
          (Library.Registry.summary d))
      Library.Registry.all;
    exit_ok
  in
  Cmd.v
    (Cmd.info "libraries"
       ~doc:"List the registered gate libraries: name, gate count and the \
             structural fingerprint that checkpoints, census indexes and \
             distributed-census deltas are validated against.  Any listed \
             name is a valid $(b,--library) argument to census, synth, \
             spectrum, serve and batch.")
    Term.(const run $ qubits_arg)

(* Known fault-injection points; kept in sync with the Faultsim.hit call
   sites (see doc/ROBUSTNESS.md). *)
let fault_points =
  [
    "checkpoint";
    "grow";
    "merge";
    (* distributed census (lib/synthesis/distrib.ml); the worker-side
       points arm in the worker process via the inherited environment *)
    "worker_crash";
    "delta_corrupt";
    "worker_stall";
    "reply_drop";
  ]

(* QSYNTH_FAULT is validated before any command runs: a typo'd spec is a
   usage error (exit 2) with a diagnostic, never a silently disarmed
   fault plan.  (The Faultsim module itself swallows parse errors at
   link time, since it initializes inside every binary.) *)
let validate_fault_env () =
  match Sys.getenv_opt "QSYNTH_FAULT" with
  | None -> ()
  | Some spec -> (
      match Faultsim.parse_spec spec with
      | pairs ->
          List.iter
            (fun (point, _) ->
              if not (List.mem point fault_points) then begin
                Format.eprintf
                  "qsynth: QSYNTH_FAULT: unknown fault point %S (known: %s)@." point
                  (String.concat ", " fault_points);
                exit exit_usage
              end)
            pairs;
          Faultsim.configure (Some spec)
      | exception Invalid_argument msg ->
          Format.eprintf "qsynth: QSYNTH_FAULT: %s@." msg;
          exit exit_usage)

let () =
  validate_fault_env ();
  let doc = "Exact synthesis of 3-qubit quantum circuits (DATE 2005 reproduction)." in
  let info = Cmd.info "qsynth" ~version:"1.0.0" ~doc ~exits:contract_exits in
  let group =
    Cmd.group info
      [
            census_cmd;
            census_worker_cmd;
            synth_cmd;
            serve_cmd;
            query_cmd;
            batch_cmd;
            table1_cmd;
            universal_cmd;
            simulate_cmd;
            draw_cmd;
            weighted_cmd;
            ablation_cmd;
            spectrum_cmd;
            classical_cmd;
            describe_cmd;
            libraries_cmd;
      ]
  in
  (* Cmdliner's stock codes (124/125) collide with the timeout/budget
     contract above, so map evaluation outcomes explicitly: every usage
     problem is 2, an escaped exception is 1. *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> exit_ok
    | Error (`Parse | `Term) -> exit_usage
    | Error `Exn -> exit_runtime)
